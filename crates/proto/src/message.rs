//! The VDX message schemas (§6.1 of the paper) and their binary encoding.
//!
//! The paper's formats, verbatim:
//!
//! * Share: `[share_id, location, isp, content_id, data_size, client_count]`
//! * Bid (Announce): `[cluster_id, share_id, performance_estimate,
//!   capacity, price]` — `cluster_id` is "an opaque id known only between
//!   the broker and the CDN".
//! * Accept: "the accept format is likely the same as the bid format"; the
//!   broker communicates results "including CDNs that 'lost' the auction",
//!   so each entry carries an `accepted` flag.
//!
//! Encoding is fixed-layout big-endian: one type byte, then the fields;
//! batches carry a `u32` count. No self-description — the frame header
//! already negotiated the protocol version.

use bytes::{Buf, BufMut, BytesMut};

/// A Share entry: client (meta-)data a broker sends to CDNs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Share {
    /// Opaque share id, referenced by bids and accepts.
    pub share_id: u64,
    /// Client location (city id).
    pub location: u32,
    /// Client ISP (AS number).
    pub isp: u32,
    /// Content identifier (lets CDNs express per-content policy).
    pub content_id: u64,
    /// Aggregate demand of the share, kbit/s.
    pub data_size_kbps: f64,
    /// Number of clients aggregated.
    pub client_count: u32,
}

/// A bid: one candidate cluster a CDN offers for one share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bid {
    /// Opaque cluster id (meaningful only between this CDN and the broker).
    pub cluster_id: u64,
    /// The share this bid answers.
    pub share_id: u64,
    /// Performance estimate (score; lower is better).
    pub performance_estimate: f64,
    /// Announced capacity, kbit/s.
    pub capacity_kbps: f64,
    /// Price per megabit.
    pub price_per_mb: f64,
}

/// One entry of an Accept message: a bid echoed back with its outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptEntry {
    /// The bid being reported on.
    pub bid: Bid,
    /// Whether the broker's Optimize step used this bid.
    pub accepted: bool,
}

/// All VDX protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake: who is speaking (node id) and as what role.
    Hello {
        /// Sender's node id.
        node_id: u64,
        /// `0` = broker, `1` = CDN.
        role: u8,
    },
    /// Decision Protocol step 3: broker → CDN client data.
    Share(Vec<Share>),
    /// Decision Protocol step 5: CDN → broker bids.
    Announce(Vec<Bid>),
    /// Decision Protocol step 7: broker → CDN outcomes.
    Accept(Vec<AcceptEntry>),
    /// Delivery Protocol step 1: client → broker "which CDN cluster?".
    Query {
        /// Client id.
        client_id: u64,
        /// Client city.
        location: u32,
    },
    /// Delivery Protocol step 2: broker → client chosen cluster.
    QueryResult {
        /// Client id echoed.
        client_id: u64,
        /// The cluster to fetch from (opaque id).
        cluster_id: u64,
    },
}

/// Wire decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Unknown message type byte.
    UnknownType(u8),
    /// Message was shorter than its fixed layout requires.
    Truncated,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
    /// A batch declared more entries than the payload can hold.
    BadCount(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownType(t) => write!(f, "unknown message type {t:#04x}"),
            WireError::Truncated => write!(f, "message truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadCount(n) => write!(f, "implausible batch count {n}"),
        }
    }
}

impl std::error::Error for WireError {}

const T_HELLO: u8 = 0x01;
const T_SHARE: u8 = 0x02;
const T_ANNOUNCE: u8 = 0x03;
const T_ACCEPT: u8 = 0x04;
const T_QUERY: u8 = 0x05;
const T_RESULT: u8 = 0x06;

const SHARE_LEN: usize = 8 + 4 + 4 + 8 + 8 + 4;
const BID_LEN: usize = 8 + 8 + 8 + 8 + 8;
const ACCEPT_LEN: usize = BID_LEN + 1;

impl Message {
    /// Encodes the message to bytes (ready to be framed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            Message::Hello { node_id, role } => {
                buf.put_u8(T_HELLO);
                buf.put_u64(*node_id);
                buf.put_u8(*role);
            }
            Message::Share(shares) => {
                buf.put_u8(T_SHARE);
                buf.put_u32(shares.len() as u32);
                for s in shares {
                    buf.put_u64(s.share_id);
                    buf.put_u32(s.location);
                    buf.put_u32(s.isp);
                    buf.put_u64(s.content_id);
                    buf.put_f64(s.data_size_kbps);
                    buf.put_u32(s.client_count);
                }
            }
            Message::Announce(bids) => {
                buf.put_u8(T_ANNOUNCE);
                buf.put_u32(bids.len() as u32);
                for b in bids {
                    put_bid(&mut buf, b);
                }
            }
            Message::Accept(entries) => {
                buf.put_u8(T_ACCEPT);
                buf.put_u32(entries.len() as u32);
                for e in entries {
                    put_bid(&mut buf, &e.bid);
                    buf.put_u8(e.accepted as u8);
                }
            }
            Message::Query {
                client_id,
                location,
            } => {
                buf.put_u8(T_QUERY);
                buf.put_u64(*client_id);
                buf.put_u32(*location);
            }
            Message::QueryResult {
                client_id,
                cluster_id,
            } => {
                buf.put_u8(T_RESULT);
                buf.put_u64(*client_id);
                buf.put_u64(*cluster_id);
            }
        }
        buf.to_vec()
    }

    /// Decodes a message; the input must contain exactly one message.
    pub fn decode(mut data: &[u8]) -> Result<Message, WireError> {
        if data.is_empty() {
            return Err(WireError::Truncated);
        }
        let ty = data.get_u8();
        let msg = match ty {
            T_HELLO => {
                need(data.len(), 9)?;
                Message::Hello {
                    node_id: data.get_u64(),
                    role: data.get_u8(),
                }
            }
            T_SHARE => {
                let count = get_count(&mut data, SHARE_LEN)?;
                let mut shares = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    shares.push(Share {
                        share_id: data.get_u64(),
                        location: data.get_u32(),
                        isp: data.get_u32(),
                        content_id: data.get_u64(),
                        data_size_kbps: data.get_f64(),
                        client_count: data.get_u32(),
                    });
                }
                Message::Share(shares)
            }
            T_ANNOUNCE => {
                let count = get_count(&mut data, BID_LEN)?;
                let mut bids = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    bids.push(get_bid(&mut data));
                }
                Message::Announce(bids)
            }
            T_ACCEPT => {
                let count = get_count(&mut data, ACCEPT_LEN)?;
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let bid = get_bid(&mut data);
                    entries.push(AcceptEntry {
                        bid,
                        accepted: data.get_u8() != 0,
                    });
                }
                Message::Accept(entries)
            }
            T_QUERY => {
                need(data.len(), 12)?;
                Message::Query {
                    client_id: data.get_u64(),
                    location: data.get_u32(),
                }
            }
            T_RESULT => {
                need(data.len(), 16)?;
                Message::QueryResult {
                    client_id: data.get_u64(),
                    cluster_id: data.get_u64(),
                }
            }
            other => return Err(WireError::UnknownType(other)),
        };
        if data.has_remaining() {
            return Err(WireError::TrailingBytes(data.remaining()));
        }
        Ok(msg)
    }
}

fn need(have: usize, want: usize) -> Result<(), WireError> {
    if have < want {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_count(data: &mut &[u8], entry_len: usize) -> Result<u32, WireError> {
    need(data.len(), 4)?;
    let count = data.get_u32();
    if (count as usize)
        .checked_mul(entry_len)
        .map_or(true, |n| n > data.len())
    {
        return Err(WireError::BadCount(count));
    }
    Ok(count)
}

fn put_bid(buf: &mut BytesMut, b: &Bid) {
    buf.put_u64(b.cluster_id);
    buf.put_u64(b.share_id);
    buf.put_f64(b.performance_estimate);
    buf.put_f64(b.capacity_kbps);
    buf.put_f64(b.price_per_mb);
}

fn get_bid(data: &mut &[u8]) -> Bid {
    Bid {
        cluster_id: data.get_u64(),
        share_id: data.get_u64(),
        performance_estimate: data.get_f64(),
        capacity_kbps: data.get_f64(),
        price_per_mb: data.get_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let wire = msg.encode();
        let back = Message::decode(&wire).expect("decodes");
        assert_eq!(msg, back);
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(Message::Hello {
            node_id: 42,
            role: 1,
        });
    }

    #[test]
    fn share_roundtrip() {
        roundtrip(Message::Share(vec![
            Share {
                share_id: 1,
                location: 17,
                isp: 64512,
                content_id: 99,
                data_size_kbps: 1234.5,
                client_count: 40,
            },
            Share {
                share_id: 2,
                location: 18,
                isp: 64513,
                content_id: 0,
                data_size_kbps: 0.0,
                client_count: 0,
            },
        ]));
        roundtrip(Message::Share(vec![]));
    }

    #[test]
    fn announce_and_accept_roundtrip() {
        let bid = Bid {
            cluster_id: 7,
            share_id: 1,
            performance_estimate: 88.5,
            capacity_kbps: 1e6,
            price_per_mb: 1.25,
        };
        roundtrip(Message::Announce(vec![bid]));
        roundtrip(Message::Accept(vec![
            AcceptEntry {
                bid,
                accepted: true,
            },
            AcceptEntry {
                bid,
                accepted: false,
            },
        ]));
    }

    #[test]
    fn query_roundtrip() {
        roundtrip(Message::Query {
            client_id: 5,
            location: 3,
        });
        roundtrip(Message::QueryResult {
            client_id: 5,
            cluster_id: 9,
        });
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(Message::decode(&[0xEE]), Err(WireError::UnknownType(0xEE)));
    }

    #[test]
    fn truncation_rejected() {
        let mut wire = Message::Hello {
            node_id: 1,
            role: 0,
        }
        .encode();
        wire.truncate(4);
        assert_eq!(Message::decode(&wire), Err(WireError::Truncated));
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = Message::Query {
            client_id: 1,
            location: 2,
        }
        .encode();
        wire.push(0);
        assert_eq!(Message::decode(&wire), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn implausible_count_rejected_before_allocation() {
        // Announce with count u32::MAX but no entries.
        let mut wire = vec![0x03];
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(Message::decode(&wire), Err(WireError::BadCount(u32::MAX)));
    }

    #[test]
    fn decode_via_frame_layer() {
        let msg = Message::Announce(vec![Bid {
            cluster_id: 1,
            share_id: 2,
            performance_estimate: 3.0,
            capacity_kbps: 4.0,
            price_per_mb: 5.0,
        }]);
        let framed = crate::frame::encode(&msg.encode());
        let mut dec = crate::frame::FrameDecoder::new();
        dec.feed(&framed);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(Message::decode(&frame.payload).unwrap(), msg);
    }
}
