//! A Go-Back-N reliable channel over a lossy [`Link`].
//!
//! Corruption is detected by the frame CRC (corrupted frames are simply
//! discarded, becoming losses); losses are repaired by cumulative acks and
//! a retransmission timeout that resends the whole window. Go-Back-N keeps
//! the state machine small and obviously correct; the Decision Protocol
//! exchanges a handful of batched messages per round, so selective repeat
//! would buy nothing.
//!
//! The channel is advanced exclusively by [`ReliableChannel::poll`] — no
//! wall clock, no threads, in the smoltcp style. A driver loop looks like:
//!
//! ```
//! use vdx_proto::{FaultConfig, Link, LinkEnd, ReliableChannel, ReliableConfig, SimTime};
//! let mut link = Link::new(FaultConfig::adverse(), 7);
//! let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
//! let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
//! a.send(b"decision round 1".to_vec());
//! let mut got = None;
//! for ms in 0..5_000 {
//!     let now = SimTime(ms);
//!     a.poll(now, &mut link);
//!     b.poll(now, &mut link);
//!     if let Some(m) = b.recv() { got = Some(m); break; }
//! }
//! assert_eq!(got.as_deref(), Some(&b"decision round 1"[..]));
//! ```

use crate::frame::{decode_datagram, encode as frame_encode};
use crate::link::{Link, LinkEnd};
use crate::SimTime;
use bytes::{Buf, BufMut, BytesMut};
use std::collections::VecDeque;
use std::sync::Arc;
use vdx_obs::{Event, Probe};

/// Reliable-channel parameters.
#[derive(Debug, Clone)]
pub struct ReliableConfig {
    /// Maximum unacknowledged packets in flight.
    pub window: usize,
    /// Retransmission timeout, ms.
    pub rto_ms: u64,
    /// Multiplier applied to the timeout after every retransmission
    /// (exponential backoff). `1.0` — the default — keeps the timeout
    /// fixed, reproducing the pre-backoff behaviour exactly. The timeout
    /// resets to `rto_ms` whenever an ack makes progress.
    pub backoff: f64,
    /// Give up after this many consecutive retransmissions without ack
    /// progress: the channel marks itself [failed] and stops resending.
    /// `None` — the default — retries forever.
    ///
    /// [failed]: ReliableChannel::has_failed
    pub max_retries: Option<u32>,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            window: 16,
            rto_ms: 200,
            backoff: 1.0,
            max_retries: None,
        }
    }
}

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Application payloads accepted by [`ReliableChannel::send`].
    pub queued: u64,
    /// Data packets transmitted (including retransmissions).
    pub data_sent: u64,
    /// Retransmitted data packets.
    pub retransmits: u64,
    /// Acks transmitted.
    pub acks_sent: u64,
    /// Payloads delivered in order to the application.
    pub delivered: u64,
    /// Frames discarded (CRC failures, i.e. corruption).
    pub discarded: u64,
    /// Out-of-order data packets dropped (Go-Back-N accepts only in-order).
    pub out_of_order: u64,
}

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;

/// Maximum application bytes per data packet; larger payloads are split
/// into fragments (flag `MORE_FRAGMENTS`) and reassembled in order — a
/// full-scale Announce batch runs to megabytes, well past the frame
/// layer's 1 MiB safety cap.
pub const MAX_FRAGMENT: usize = 32 * 1024;

const FLAG_MORE_FRAGMENTS: u8 = 0x01;

/// One wire-sized piece of an application payload.
#[derive(Debug, Clone)]
struct Fragment {
    /// Whether more fragments of the same payload follow.
    more: bool,
    bytes: Vec<u8>,
}

/// One reliable, ordered byte-message channel over one end of a link.
pub struct ReliableChannel {
    end: LinkEnd,
    config: ReliableConfig,
    // Sender.
    send_queue: VecDeque<Fragment>,
    inflight: VecDeque<(u64, Fragment)>,
    next_seq: u64,
    oldest_unacked_at: Option<SimTime>,
    // Receiver.
    expected_seq: u64,
    delivered: VecDeque<Vec<u8>>,
    reassembly: Vec<u8>,
    ack_due: bool,
    // Backoff state: the current (possibly inflated) timeout and how many
    // times the window has been resent without ack progress.
    rto_current_ms: u64,
    retries_without_progress: u32,
    failed: bool,
    stats: ChannelStats,
    probe: Arc<dyn Probe>,
}

impl ReliableChannel {
    /// Creates a channel bound to one end of a link.
    pub fn new(end: LinkEnd, config: ReliableConfig) -> ReliableChannel {
        let rto_current_ms = config.rto_ms;
        ReliableChannel {
            end,
            config,
            send_queue: VecDeque::new(),
            inflight: VecDeque::new(),
            next_seq: 0,
            oldest_unacked_at: None,
            expected_seq: 0,
            delivered: VecDeque::new(),
            reassembly: Vec::new(),
            ack_due: false,
            rto_current_ms,
            retries_without_progress: 0,
            failed: false,
            stats: ChannelStats::default(),
            probe: vdx_obs::probe::noop(),
        }
    }

    /// Routes this channel's wire events ([`Event::FrameRetransmitted`],
    /// [`Event::PayloadFragmented`]) to `probe`. The default is a no-op;
    /// the channel's behaviour is identical either way.
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.probe = probe;
    }

    /// Queues an application payload for reliable delivery. Payloads
    /// larger than [`MAX_FRAGMENT`] are split transparently; the receiver
    /// reassembles before delivery.
    pub fn send(&mut self, payload: Vec<u8>) {
        self.stats.queued += 1;
        if payload.len() <= MAX_FRAGMENT {
            self.send_queue.push_back(Fragment {
                more: false,
                bytes: payload,
            });
            return;
        }
        if self.probe.enabled() {
            self.probe.emit(Event::PayloadFragmented {
                fragments: payload.len().div_ceil(MAX_FRAGMENT) as u64,
                bytes: payload.len() as u64,
            });
        }
        let mut chunks = payload.chunks(MAX_FRAGMENT).peekable();
        while let Some(chunk) = chunks.next() {
            self.send_queue.push_back(Fragment {
                more: chunks.peek().is_some(),
                bytes: chunk.to_vec(),
            });
        }
    }

    /// Pops the next in-order delivered payload, if any.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.delivered.pop_front()
    }

    /// Whether everything queued has been delivered *and acknowledged*.
    pub fn is_idle(&self) -> bool {
        self.send_queue.is_empty() && self.inflight.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Whether the sender exhausted [`ReliableConfig::max_retries`]
    /// consecutive retransmissions without any ack progress and gave up.
    /// A failed channel keeps receiving but stops (re)transmitting.
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// Advances the state machine: ingests link packets, delivers in-order
    /// data, sends acks, (re)transmits within the window.
    pub fn poll(&mut self, now: SimTime, link: &mut Link) {
        // Ingest. The link is datagram-oriented (one frame per packet), so
        // each packet is decoded independently: corruption anywhere in a
        // packet discards that packet and nothing else.
        for packet in link.recv(self.end, now) {
            match decode_datagram(&packet) {
                Ok(frame) => self.handle_packet(&frame.payload),
                Err(_) => self.stats.discarded += 1,
            }
        }

        // Ack if data arrived.
        if self.ack_due {
            let mut buf = BytesMut::with_capacity(9);
            buf.put_u8(KIND_ACK);
            buf.put_u64(self.expected_seq);
            link.send(self.end, now, &frame_encode(&buf));
            self.stats.acks_sent += 1;
            self.ack_due = false;
        }

        // Retransmit on timeout (entire window — Go-Back-N), backing the
        // timeout off multiplicatively and giving up after the configured
        // retry budget.
        if let Some(sent_at) = self.oldest_unacked_at {
            if now.since(sent_at) >= self.rto_current_ms
                && !self.inflight.is_empty()
                && !self.failed
            {
                if self
                    .config
                    .max_retries
                    .is_some_and(|max| self.retries_without_progress >= max)
                {
                    self.failed = true;
                } else {
                    self.retries_without_progress += 1;
                    self.rto_current_ms = ((self.rto_current_ms as f64) * self.config.backoff)
                        .round()
                        .max(1.0) as u64;
                    let packets: Vec<Vec<u8>> = self
                        .inflight
                        .iter()
                        .map(|(seq, frag)| data_packet(*seq, frag))
                        .collect();
                    if self.probe.enabled() {
                        self.probe.emit(Event::FrameRetransmitted {
                            at_ms: now.0,
                            frames: packets.len() as u64,
                        });
                    }
                    for p in packets {
                        link.send(self.end, now, &p);
                        self.stats.data_sent += 1;
                        self.stats.retransmits += 1;
                    }
                    self.oldest_unacked_at = Some(now);
                }
            }
        }

        if self.failed {
            return;
        }

        // Fill the window with new data.
        while self.inflight.len() < self.config.window {
            let Some(frag) = self.send_queue.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            link.send(self.end, now, &data_packet(seq, &frag));
            self.stats.data_sent += 1;
            self.inflight.push_back((seq, frag));
            if self.oldest_unacked_at.is_none() {
                self.oldest_unacked_at = Some(now);
            }
        }
    }

    fn handle_packet(&mut self, payload: &[u8]) {
        let mut data = payload;
        if data.is_empty() {
            self.stats.discarded += 1;
            return;
        }
        match data.get_u8() {
            KIND_DATA => {
                if data.len() < 9 {
                    self.stats.discarded += 1;
                    return;
                }
                let seq = data.get_u64();
                let flags = data.get_u8();
                if seq == self.expected_seq {
                    self.reassembly.extend_from_slice(data);
                    if flags & FLAG_MORE_FRAGMENTS == 0 {
                        self.delivered
                            .push_back(std::mem::take(&mut self.reassembly));
                        self.stats.delivered += 1;
                    }
                    self.expected_seq += 1;
                } else {
                    self.stats.out_of_order += 1;
                }
                // Always (re)ack the current cumulative position.
                self.ack_due = true;
            }
            KIND_ACK => {
                if data.len() < 8 {
                    self.stats.discarded += 1;
                    return;
                }
                let next_expected = data.get_u64();
                let mut progressed = false;
                while self
                    .inflight
                    .front()
                    .map(|(seq, _)| *seq < next_expected)
                    .unwrap_or(false)
                {
                    self.inflight.pop_front();
                    progressed = true;
                }
                if progressed {
                    // Ack progress: restore the base timeout and the full
                    // retry budget.
                    self.rto_current_ms = self.config.rto_ms;
                    self.retries_without_progress = 0;
                }
                if self.inflight.is_empty() {
                    self.oldest_unacked_at = None;
                }
            }
            _ => self.stats.discarded += 1,
        }
    }
}

fn data_packet(seq: u64, frag: &Fragment) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(10 + frag.bytes.len());
    buf.put_u8(KIND_DATA);
    buf.put_u64(seq);
    buf.put_u8(if frag.more { FLAG_MORE_FRAGMENTS } else { 0 });
    buf.put_slice(&frag.bytes);
    frame_encode(&buf).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::FaultConfig;

    fn drive(
        a: &mut ReliableChannel,
        b: &mut ReliableChannel,
        link: &mut Link,
        from_ms: u64,
        to_ms: u64,
    ) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        for ms in from_ms..to_ms {
            let now = SimTime(ms);
            a.poll(now, link);
            b.poll(now, link);
            while let Some(m) = a.recv() {
                got_a.push(m);
            }
            while let Some(m) = b.recv() {
                got_b.push(m);
            }
        }
        (got_a, got_b)
    }

    #[test]
    fn lossless_delivery_in_order() {
        let mut link = Link::new(FaultConfig::lossless(), 1);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        for i in 0..50u32 {
            a.send(i.to_be_bytes().to_vec());
        }
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 100);
        assert_eq!(got_b.len(), 50);
        for (i, m) in got_b.iter().enumerate() {
            assert_eq!(m, &(i as u32).to_be_bytes().to_vec());
        }
        assert!(a.is_idle());
        assert_eq!(a.stats().retransmits, 0);
    }

    #[test]
    fn survives_heavy_loss_and_corruption() {
        let cfg = FaultConfig {
            drop_chance: 0.25,
            corrupt_chance: 0.15,
            delay_ms: 5,
            jitter_ms: 5,
            rate_limit_bytes_per_ms: None,
        };
        let mut link = Link::new(cfg, 42);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        for i in 0..30u32 {
            a.send(format!("msg-{i}").into_bytes());
        }
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 30_000);
        assert_eq!(got_b.len(), 30, "all messages delivered despite faults");
        for (i, m) in got_b.iter().enumerate() {
            assert_eq!(m, &format!("msg-{i}").into_bytes(), "in order");
        }
        assert!(a.stats().retransmits > 0, "loss actually exercised");
        assert!(b.stats().discarded > 0, "corruption actually exercised");
    }

    #[test]
    fn bidirectional_traffic() {
        let mut link = Link::new(FaultConfig::adverse(), 5);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        a.send(b"ping".to_vec());
        b.send(b"pong".to_vec());
        let (got_a, got_b) = drive(&mut a, &mut b, &mut link, 0, 10_000);
        assert_eq!(got_b, vec![b"ping".to_vec()]);
        assert_eq!(got_a, vec![b"pong".to_vec()]);
    }

    #[test]
    fn window_limits_inflight() {
        let mut link = Link::new(
            FaultConfig {
                delay_ms: 1_000,
                ..FaultConfig::lossless()
            },
            1,
        );
        let mut a = ReliableChannel::new(
            LinkEnd::A,
            ReliableConfig {
                window: 4,
                rto_ms: 10_000,
                ..ReliableConfig::default()
            },
        );
        for i in 0..20u32 {
            a.send(i.to_be_bytes().to_vec());
        }
        a.poll(SimTime(0), &mut link);
        // Only the window's worth was transmitted.
        assert_eq!(a.stats().data_sent, 4);
    }

    #[test]
    fn empty_channel_is_idle() {
        let a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        assert!(a.is_idle());
    }

    #[test]
    fn large_payloads_fragment_and_roundtrip() {
        let mut link = Link::new(FaultConfig::lossless(), 1);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        let big = vec![0xABu8; 200_000];
        a.send(big.clone());
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 50);
        assert_eq!(got_b, vec![big]);
        // 200 kB over 32 kB fragments = 7 data packets.
        assert_eq!(a.stats().data_sent, 7, "payload was fragmented");
    }

    #[test]
    fn oversized_payloads_survive_heavy_loss() {
        // A multi-megabyte Announce (past the 1 MiB frame cap) must arrive
        // intact even over a lossy link.
        let cfg = FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.05,
            delay_ms: 2,
            jitter_ms: 2,
            rate_limit_bytes_per_ms: None,
        };
        let mut link = Link::new(cfg, 77);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        let huge: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
        a.send(huge.clone());
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 120_000);
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0], huge);
    }

    #[test]
    fn probe_observes_fragmentation_and_retransmits() {
        use vdx_obs::MemoryProbe;
        let cfg = FaultConfig {
            drop_chance: 0.25,
            corrupt_chance: 0.0,
            delay_ms: 2,
            jitter_ms: 2,
            rate_limit_bytes_per_ms: None,
        };
        let mut link = Link::new(cfg, 9);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        let probe = Arc::new(MemoryProbe::new());
        a.set_probe(probe.clone());
        let big = vec![0x5Au8; 200_000];
        a.send(big.clone());
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 30_000);
        assert_eq!(got_b, vec![big], "probe must not perturb delivery");

        let events = probe.take();
        // 200 kB over 32 kB fragments = 7 pieces, announced up front.
        assert_eq!(
            events[0],
            Event::PayloadFragmented {
                fragments: 7,
                bytes: 200_000
            }
        );
        let retransmit_frames: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::FrameRetransmitted { frames, .. } => Some(*frames),
                _ => None,
            })
            .sum();
        assert!(
            retransmit_frames > 0,
            "lossy link must trigger retransmit events"
        );
        assert_eq!(
            retransmit_frames,
            a.stats().retransmits,
            "events account for every retransmitted packet"
        );
    }

    #[test]
    fn backoff_spaces_retransmissions_out() {
        // A black-hole link: every retransmission is timer-driven.
        let blackout = FaultConfig {
            drop_chance: 1.0,
            ..FaultConfig::lossless()
        };
        let mut link = Link::new(blackout.clone(), 1);
        let mut fixed = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        fixed.send(b"x".to_vec());
        let mut link2 = Link::new(blackout, 1);
        let mut backing_off = ReliableChannel::new(
            LinkEnd::A,
            ReliableConfig {
                backoff: 2.0,
                ..ReliableConfig::default()
            },
        );
        backing_off.send(b"x".to_vec());
        for ms in 0..2_000 {
            fixed.poll(SimTime(ms), &mut link);
            backing_off.poll(SimTime(ms), &mut link2);
        }
        // Fixed rto 200 fires at 200, 400, ... = 9 times in 2 s; doubling
        // fires at 200, 600, 1400 = 3 times.
        assert_eq!(fixed.stats().retransmits, 9);
        assert_eq!(backing_off.stats().retransmits, 3);
        assert!(!backing_off.has_failed(), "no retry bound configured");
    }

    #[test]
    fn bounded_retries_give_up_cleanly() {
        let mut link = Link::new(
            FaultConfig {
                drop_chance: 1.0,
                ..FaultConfig::lossless()
            },
            1,
        );
        let mut a = ReliableChannel::new(
            LinkEnd::A,
            ReliableConfig {
                max_retries: Some(3),
                ..ReliableConfig::default()
            },
        );
        a.send(b"doomed".to_vec());
        for ms in 0..10_000 {
            a.poll(SimTime(ms), &mut link);
        }
        assert!(a.has_failed());
        // Initial transmission + exactly the retry budget, then silence.
        assert_eq!(a.stats().retransmits, 3);
        assert_eq!(a.stats().data_sent, 4);
        assert!(!a.is_idle(), "the payload was never acknowledged");
    }

    #[test]
    fn ack_progress_restores_the_retry_budget() {
        // Lossless but slow link: the first window times out once before
        // its acks arrive, then delivery proceeds and the budget resets.
        let mut link = Link::new(
            FaultConfig {
                delay_ms: 300,
                ..FaultConfig::lossless()
            },
            1,
        );
        let mut a = ReliableChannel::new(
            LinkEnd::A,
            ReliableConfig {
                max_retries: Some(2),
                ..ReliableConfig::default()
            },
        );
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        for i in 0..40u32 {
            a.send(i.to_be_bytes().to_vec());
        }
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 20_000);
        assert_eq!(got_b.len(), 40, "slow acks must not trip the retry cap");
        assert!(!a.has_failed());
    }

    #[test]
    fn interleaved_small_and_fragmented_payloads_stay_ordered() {
        let mut link = Link::new(FaultConfig::lossless(), 3);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        let big = vec![7u8; 100_000];
        a.send(b"first".to_vec());
        a.send(big.clone());
        a.send(b"last".to_vec());
        let (_, got_b) = drive(&mut a, &mut b, &mut link, 0, 200);
        assert_eq!(got_b, vec![b"first".to_vec(), big, b"last".to_vec()]);
    }
}
