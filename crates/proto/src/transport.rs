//! Blocking TCP transport for the Decision Protocol: real sockets under
//! the same frames and messages the simulated links carry.
//!
//! ## Failure-model contract
//!
//! The in-memory [`crate::Link`] models loss, corruption and reordering
//! explicitly, and [`crate::reliable`] repairs them with Go-Back-N. TCP
//! already gives ordered, checksummed, retransmitted delivery, so this
//! module deliberately runs *without* the reliable layer — the failure
//! model a daemon must handle is different:
//!
//! * **Silence** — the peer is connected but an expected message never
//!   arrives (slow CDN, stuck agent). TCP cannot detect this; callers
//!   own the deadline and treat a quiet connection exactly like a
//!   missed round deadline (the broker's degradation ladder applies).
//! * **Disconnection** — [`Connection::recv`] returns `Ok(None)` on a
//!   clean EOF and `Err` on a reset. Both mean every in-flight round
//!   with that peer has failed; a reconnecting peer starts a fresh
//!   session with a new [`crate::Message::Hello`].
//! * **Stream corruption** — each message still travels inside a
//!   CRC-framed [`crate::frame`] envelope, so a desynchronized or
//!   corrupted stream surfaces as [`TransportError::Frame`] rather than
//!   as a garbled message; callers drop the connection (no resync is
//!   attempted over TCP — unlike a lossy datagram link, a corrupt byte
//!   stream means the transport itself is broken).
//! * **Staleness** — every frame carries the 8-byte round id it belongs
//!   to, so an Announce that arrives after its round's deadline is
//!   identified (and discarded) by the receiver instead of being
//!   mistaken for the current round's answer. This replaces the
//!   request-correlation ids of [`crate::endpoint`], which pair
//!   messages but cannot tell *rounds* apart across reconnects.
//!
//! Payload layout inside each frame: `round(8, big-endian) | Message`.
//!
//! Determinism: this module reads sockets, never the clock. Timeouts
//! are configured by the caller ([`Connection::set_read_timeout`]) and
//! surface as [`TransportError::is_timeout`] errors; what "now" means
//! stays a driver decision, as everywhere else in `vdx-proto`.

use crate::frame::{self, FrameDecoder, FrameError};
use crate::message::{Message, WireError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Errors a transport operation can surface.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure (includes read timeouts; see
    /// [`TransportError::is_timeout`]).
    Io(std::io::Error),
    /// The byte stream desynchronized or failed a frame CRC.
    Frame(FrameError),
    /// A frame decoded but its payload was not a valid message.
    Wire(WireError),
    /// A frame decoded but its payload was shorter than the round
    /// header.
    MissingRoundHeader,
}

impl TransportError {
    /// Whether this error is a read timeout — the caller's configured
    /// [`Connection::set_read_timeout`] expiring, not a peer failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            TransportError::Io(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
            TransportError::Frame(e) => write!(f, "transport framing: {e}"),
            TransportError::Wire(e) => write!(f, "transport message: {e}"),
            TransportError::MissingRoundHeader => {
                write!(f, "frame payload shorter than the round header")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// One framed, round-stamped message stream over a [`TcpStream`].
///
/// Writing and reading are independent; to write from one thread while
/// another blocks in [`Connection::recv`], clone the connection with
/// [`Connection::try_clone`] (each clone keeps its own decoder state,
/// so exactly one clone may read).
pub struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
}

/// Bytes of the round header prefixed to every message payload.
const ROUND_HEADER: usize = 8;

impl Connection {
    /// Wraps an established stream. Disables Nagle's algorithm: round
    /// messages are latency-sensitive and self-contained.
    pub fn new(stream: TcpStream) -> std::io::Result<Connection> {
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
        })
    }

    /// Connects to `addr` (any `ToSocketAddrs`) and wraps the stream.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Connection> {
        Connection::new(TcpStream::connect(addr)?)
    }

    /// The peer's socket address, if the socket still has one.
    pub fn peer_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }

    /// Bounds how long [`Connection::recv`] blocks; `None` blocks
    /// forever. Expiry surfaces as an error whose
    /// [`TransportError::is_timeout`] is true.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// A second handle to the same socket (for a writer thread). The
    /// clone starts with an empty decoder: only one handle may read.
    pub fn try_clone(&self) -> std::io::Result<Connection> {
        Ok(Connection {
            stream: self.stream.try_clone()?,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
        })
    }

    /// Sends one message stamped with the round it belongs to.
    pub fn send(&mut self, round: u64, msg: &Message) -> std::io::Result<()> {
        let body = msg.encode();
        let mut payload = Vec::with_capacity(ROUND_HEADER + body.len());
        payload.extend_from_slice(&round.to_be_bytes());
        payload.extend_from_slice(&body);
        let wire = frame::encode(&payload);
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }

    /// Receives the next `(round, message)`. Blocks up to the configured
    /// read timeout. `Ok(None)` is a clean EOF (the peer closed);
    /// timeouts and failures surface as `Err` — check
    /// [`TransportError::is_timeout`] to tell the two apart.
    pub fn recv(&mut self) -> Result<Option<(u64, Message)>, TransportError> {
        loop {
            // Drain any frame already buffered before touching the
            // socket again.
            if let Some(frame) = self.decoder.next_frame().map_err(TransportError::Frame)? {
                let payload = &frame.payload;
                if payload.len() < ROUND_HEADER {
                    return Err(TransportError::MissingRoundHeader);
                }
                let mut round_bytes = [0u8; ROUND_HEADER];
                round_bytes.copy_from_slice(&payload[..ROUND_HEADER]);
                let round = u64::from_be_bytes(round_bytes);
                let msg =
                    Message::decode(&payload[ROUND_HEADER..]).map_err(TransportError::Wire)?;
                return Ok(Some((round, msg)));
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Ok(None); // clean EOF
            }
            self.decoder.feed(&self.read_buf[..n]);
        }
    }

    /// Shuts down both directions of the socket. Subsequent reads on
    /// the peer side see EOF.
    pub fn shutdown(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("peer", &self.stream.peer_addr().ok())
            .field("buffered", &self.decoder.buffered())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Share;
    use std::net::TcpListener;

    fn share(n: u64) -> Message {
        Message::Share(vec![Share {
            share_id: n,
            location: 7,
            isp: 0,
            content_id: 0,
            data_size_kbps: 100.0,
            client_count: 3,
        }])
    }

    fn loopback_pair() -> (Connection, Connection) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let client = std::thread::spawn(move || Connection::connect(addr).expect("connect"));
        let (server_stream, _) = listener.accept().expect("accept");
        let server = Connection::new(server_stream).expect("wrap");
        (client.join().expect("client thread"), server)
    }

    #[test]
    fn roundtrips_round_stamped_messages() {
        let (mut a, mut b) = loopback_pair();
        a.send(3, &share(1)).expect("send");
        a.send(
            4,
            &Message::Hello {
                node_id: 9,
                role: 1,
            },
        )
        .expect("send");
        let (round, msg) = b.recv().expect("recv").expect("not eof");
        assert_eq!(round, 3);
        assert_eq!(msg, share(1));
        let (round, msg) = b.recv().expect("recv").expect("not eof");
        assert_eq!(round, 4);
        assert_eq!(
            msg,
            Message::Hello {
                node_id: 9,
                role: 1
            }
        );
    }

    #[test]
    fn clean_close_reads_as_eof() {
        let (a, mut b) = loopback_pair();
        drop(a);
        assert!(matches!(b.recv(), Ok(None)));
    }

    #[test]
    fn read_timeout_is_distinguishable() {
        let (_a, mut b) = loopback_pair();
        b.set_read_timeout(Some(Duration::from_millis(20)))
            .expect("set timeout");
        let err = b.recv().expect_err("nothing was sent");
        assert!(err.is_timeout(), "{err}");
    }

    #[test]
    fn writer_clone_sends_while_reader_blocks() {
        let (a, mut b) = loopback_pair();
        let mut writer = a.try_clone().expect("clone");
        let t = std::thread::spawn(move || {
            writer.send(1, &share(2)).expect("send from clone");
        });
        let (round, msg) = b.recv().expect("recv").expect("not eof");
        assert_eq!((round, msg), (1, share(2)));
        t.join().expect("writer thread");
        drop(a);
    }

    #[test]
    fn corrupt_stream_surfaces_as_frame_error() {
        let (mut a, mut b) = loopback_pair();
        a.send(0, &share(0)).expect("send");
        // Garbage after a valid frame: the decoder sees a bad magic.
        use std::io::Write as _;
        a.stream.write_all(&[0xDE, 0xAD, 0xBE, 0xEF]).expect("raw");
        drop(a);
        assert!(b.recv().expect("first frame is fine").is_some());
        let err = b.recv().expect_err("garbage breaks framing");
        assert!(matches!(err, TransportError::Frame(_)), "{err}");
    }
}
