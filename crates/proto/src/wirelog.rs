//! Wire capture: a pcap-flavoured log of everything crossing a link.
//!
//! smoltcp's examples all take `--pcap` so you can watch the stack's
//! packets in Wireshark; the equivalent here is a [`WireLog`] that records
//! timestamped frames (with direction), decodes the VDX messages inside
//! them when they parse, and renders a human-readable trace with hexdumps.
//! Deterministic simulations plus wire logs make protocol bugs diffable:
//! two runs either produce byte-identical captures or the diff *is* the
//! bug.

use crate::frame::decode_datagram;
use crate::link::LinkEnd;
use crate::message::Message;
use crate::SimTime;

/// One captured packet.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedPacket {
    /// Capture time.
    pub at: SimTime,
    /// Transmitting end.
    pub from: LinkEnd,
    /// Raw bytes as seen on the wire (post fault-injection if captured on
    /// the receive side).
    pub bytes: Vec<u8>,
}

/// An in-memory wire capture with a bounded buffer.
#[derive(Debug, Default)]
pub struct WireLog {
    packets: Vec<CapturedPacket>,
    capacity: usize,
    evicted: u64,
}

impl WireLog {
    /// Creates a log keeping at most `capacity` packets (older packets are
    /// evicted first; the count of evictions is retained).
    pub fn with_capacity(capacity: usize) -> WireLog {
        WireLog {
            packets: Vec::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Records a packet.
    pub fn capture(&mut self, at: SimTime, from: LinkEnd, bytes: &[u8]) {
        if self.packets.len() == self.capacity {
            self.packets.remove(0);
            self.evicted += 1;
        }
        self.packets.push(CapturedPacket {
            at,
            from,
            bytes: bytes.to_vec(),
        });
    }

    /// The captured packets, oldest first.
    pub fn packets(&self) -> &[CapturedPacket] {
        &self.packets
    }

    /// Packets the *capture buffer* evicted to stay within its capacity
    /// bound. This is bookkeeping about the log itself — packets not
    /// retained for display — and deliberately not called "dropped" or
    /// "discarded": wire losses injected by the link are
    /// `LinkStats::dropped`, and frames the Go-Back-N receiver throws away
    /// are `ChannelStats::{discarded, out_of_order}`. The three causes are
    /// journaled separately by `Event::WireDrops`.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Renders the whole capture as text: one header line per packet with
    /// the decoded message kind where the frame parses, plus a hexdump of
    /// the first `max_dump` bytes.
    pub fn render(&self, max_dump: usize) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!(
                "... {} earlier packets evicted from the capture buffer ...\n",
                self.evicted
            ));
        }
        for p in &self.packets {
            let dir = match p.from {
                LinkEnd::A => "A->B",
                LinkEnd::B => "B->A",
            };
            let summary = summarize(&p.bytes);
            out.push_str(&format!(
                "[{:>8} ms] {} {:>5} B  {}\n",
                p.at.0,
                dir,
                p.bytes.len(),
                summary
            ));
            out.push_str(&hexdump(&p.bytes[..p.bytes.len().min(max_dump)]));
        }
        out
    }

    /// Bridges the capture into the observability journal: one
    /// [`vdx_obs::Event::WirePacket`] per captured packet, oldest first,
    /// carrying the same one-line classification as [`WireLog::render`].
    pub fn events(&self) -> Vec<vdx_obs::Event> {
        self.packets
            .iter()
            .map(|p| vdx_obs::Event::WirePacket {
                at_ms: p.at.0,
                dir: match p.from {
                    LinkEnd::A => "A->B".to_string(),
                    LinkEnd::B => "B->A".to_string(),
                },
                bytes: p.bytes.len() as u64,
                summary: summarize(&p.bytes),
            })
            .collect()
    }
}

/// One-line classification of a wire packet.
fn summarize(bytes: &[u8]) -> String {
    match decode_datagram(bytes) {
        Err(e) => format!("unparseable frame ({e})"),
        Ok(frame) => {
            // Reliable-channel header: kind(1) seq(8) then (for data) the
            // endpoint envelope. Peek without consuming.
            let p = &frame.payload;
            if p.is_empty() {
                return "empty frame".into();
            }
            match p[0] {
                1 if p.len() >= 9 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().expect("9 bytes"));
                    format!("ACK next={seq}")
                }
                0 if p.len() >= 9 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().expect("9 bytes"));
                    let inner = &p[9..];
                    // Endpoint envelope: kind(1) id(8) message.
                    let msg = if inner.len() > 9 {
                        match Message::decode(&inner[9..]) {
                            Ok(Message::Share(s)) => format!("Share x{}", s.len()),
                            Ok(Message::Announce(b)) => format!("Announce x{}", b.len()),
                            Ok(Message::Accept(e)) => format!("Accept x{}", e.len()),
                            Ok(Message::Hello { .. }) => "Hello".into(),
                            Ok(Message::Query { .. }) => "Query".into(),
                            Ok(Message::QueryResult { .. }) => "QueryResult".into(),
                            Err(_) => "opaque payload".into(),
                        }
                    } else {
                        "opaque payload".into()
                    };
                    format!("DATA seq={seq} [{msg}]")
                }
                _ => "unknown channel packet".into(),
            }
        }
    }
}

/// Classic 16-bytes-per-row hexdump with an ASCII gutter.
pub fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        out.push_str(&format!(
            "    {:04x}  {:<47}  |{}|\n",
            row * 16,
            hex.join(" "),
            ascii
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode;
    use bytes::BufMut;

    fn data_packet_with(msg: &Message) -> Vec<u8> {
        // kind=0(data) seq=5 | envelope kind=0(request) id=1 | message
        let mut p = bytes::BytesMut::new();
        p.put_u8(0);
        p.put_u64(5);
        p.put_u8(0);
        p.put_u64(1);
        p.put_slice(&msg.encode());
        encode(&p).to_vec()
    }

    #[test]
    fn capture_and_render() {
        let mut log = WireLog::with_capacity(16);
        let msg = Message::Share(vec![]);
        log.capture(SimTime(10), LinkEnd::A, &data_packet_with(&msg));
        let text = log.render(32);
        assert!(text.contains("A->B"), "{text}");
        assert!(text.contains("DATA seq=5"), "{text}");
        assert!(text.contains("Share x0"), "{text}");
        assert!(text.contains("|"), "has ascii gutter");
    }

    #[test]
    fn ack_packets_are_classified() {
        let mut p = bytes::BytesMut::new();
        p.put_u8(1);
        p.put_u64(42);
        let wire = encode(&p).to_vec();
        let mut log = WireLog::with_capacity(4);
        log.capture(SimTime(0), LinkEnd::B, &wire);
        assert!(log.render(0).contains("ACK next=42"));
    }

    #[test]
    fn garbage_is_reported_not_crashed() {
        let mut log = WireLog::with_capacity(4);
        log.capture(SimTime(0), LinkEnd::A, &[0xde, 0xad, 0xbe, 0xef]);
        assert!(log.render(16).contains("unparseable"));
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut log = WireLog::with_capacity(2);
        for i in 0..5u64 {
            log.capture(SimTime(i), LinkEnd::A, &[i as u8]);
        }
        assert_eq!(log.packets().len(), 2);
        assert_eq!(log.evicted(), 3);
        assert_eq!(log.packets()[0].at, SimTime(3));
        assert!(log
            .render(4)
            .contains("3 earlier packets evicted from the capture buffer"));
    }

    #[test]
    fn events_bridge_matches_the_rendered_capture() {
        let mut log = WireLog::with_capacity(16);
        let wire = data_packet_with(&Message::Announce(vec![]));
        log.capture(SimTime(25), LinkEnd::B, &wire);
        let events = log.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            vdx_obs::Event::WirePacket {
                at_ms,
                dir,
                bytes,
                summary,
            } => {
                assert_eq!(*at_ms, 25);
                assert_eq!(dir, "B->A");
                assert_eq!(*bytes, wire.len() as u64);
                assert!(summary.contains("Announce x0"), "{summary}");
            }
            other => panic!("expected WirePacket, got {other:?}"),
        }
    }

    #[test]
    fn hexdump_formats_rows() {
        let dump = hexdump(b"hello, vdx! 0123456789");
        assert!(dump.contains("68 65 6c 6c 6f"), "{dump}");
        assert!(dump.contains("|hello, vdx! 0123|"), "{dump}");
        assert!(dump.contains("0010"), "second row offset");
    }
}
