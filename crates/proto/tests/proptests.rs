//! Property tests for the wire protocol: reliable delivery must hold for
//! *every* fault seed, and no input — however mangled — may panic a
//! decoder.

use proptest::prelude::*;
use vdx_proto::reliable::{ReliableChannel, ReliableConfig};
use vdx_proto::{FaultConfig, Link, LinkEnd, Message, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Go-Back-N delivers every payload, in order, exactly once — for any
    /// RNG seed and any moderate loss/corruption rates.
    #[test]
    fn reliable_channel_delivers_everything_in_order(
        seed in any::<u64>(),
        drop in 0.0f64..0.30,
        corrupt in 0.0f64..0.20,
        delay in 0u64..30,
        n_msgs in 1usize..25,
    ) {
        let faults = FaultConfig {
            drop_chance: drop,
            corrupt_chance: corrupt,
            delay_ms: delay,
            jitter_ms: delay / 2,
            rate_limit_bytes_per_ms: None,
        };
        let mut link = Link::new(faults, seed);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        for i in 0..n_msgs {
            a.send(format!("payload-{i}").into_bytes());
        }
        let mut received = Vec::new();
        for ms in 0..120_000u64 {
            let now = SimTime(ms);
            a.poll(now, &mut link);
            b.poll(now, &mut link);
            while let Some(m) = b.recv() {
                received.push(m);
            }
            if received.len() == n_msgs && a.is_idle() {
                break;
            }
        }
        prop_assert_eq!(received.len(), n_msgs, "all delivered");
        for (i, m) in received.iter().enumerate() {
            prop_assert_eq!(m, &format!("payload-{i}").into_bytes(), "in order, no dupes");
        }
    }

    /// The rate limiter never deadlocks the channel: policed packets are
    /// retransmitted once the bucket refills.
    #[test]
    fn reliable_channel_survives_rate_limiting(
        seed in any::<u64>(),
        rate in 0.5f64..8.0,
    ) {
        let faults = FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            delay_ms: 2,
            jitter_ms: 0,
            rate_limit_bytes_per_ms: Some(rate),
        };
        let mut link = Link::new(faults, seed);
        let mut a = ReliableChannel::new(LinkEnd::A, ReliableConfig::default());
        let mut b = ReliableChannel::new(LinkEnd::B, ReliableConfig::default());
        for i in 0..5u32 {
            a.send(vec![i as u8; 2_000]);
        }
        let mut got = 0;
        for ms in 0..120_000u64 {
            a.poll(SimTime(ms), &mut link);
            b.poll(SimTime(ms), &mut link);
            while b.recv().is_some() {
                got += 1;
            }
            if got == 5 {
                break;
            }
        }
        prop_assert_eq!(got, 5);
    }

    /// Feeding a corrupted *message* through a clean frame never panics and
    /// never silently yields a different valid message of the same type
    /// with different length semantics.
    #[test]
    fn message_decode_total_on_mutations(
        client_id in any::<u64>(),
        location in any::<u32>(),
        mutate_at in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let wire = Message::Query { client_id, location }.encode();
        let mut mutated = wire.clone();
        let pos = (mutate_at as usize) % mutated.len();
        mutated[pos] ^= xor;
        let _ = Message::decode(&mutated); // must not panic
    }

    #[test]
    fn simtime_is_monotone_under_plus(
        base in 0u64..1_000_000,
        add1 in 0u64..1_000,
        add2 in 0u64..1_000,
    ) {
        let t = SimTime(base);
        prop_assert!(t.plus_ms(add1 + add2) >= t.plus_ms(add1));
        prop_assert_eq!(t.plus_ms(add1).plus_ms(add2), t.plus_ms(add1 + add2));
        prop_assert_eq!(t.plus_ms(add1).since(t), add1);
    }
}
