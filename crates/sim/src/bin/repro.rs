//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--small] [--seed N] [--json] [--journal PATH] [--threads N]
//!                    [--rounds N] [--solver-cold]
//! repro obs-report <journal.jsonl>
//! repro bench-experiments [--small] [--seed N] [--threads N] [--out PATH]
//! repro audit ingest <artifact>... [--store DIR]
//! repro audit query <name> [--store DIR]
//! repro audit report [--store DIR]
//! repro audit --baseline PATH [--metric-tol PCT] [--wall-tol PCT] [--threads N]
//!
//! experiments: fig3 fig4 fig5 fig7 table1 table3
//!              fig10 fig11 fig12 fig13 fig14 fig15 (aliases of the
//!              combined accounting run) fig16 fig17 fig18
//!              ext-stability ext-hybrid ext-noise faults all
//! --small        reduced-scale scenario (fast; used by CI)
//! --seed N       override the master seed (default 2017)
//! --json         additionally print machine-readable results
//! --journal PATH flight-record the run as JSONL events (conventionally
//!                under results/journals/); analyse with `repro obs-report`
//! --threads N    size of the round fan-out thread pool (requires the
//!                default `parallel` feature; results and journals are
//!                byte-identical for any N)
//! --rounds N     (table3) run N consecutive decision rounds per design —
//!                the warm-started round hot loop; the reported table
//!                comes from each design's last round and is identical
//!                for any N (default 1)
//! --solver-cold  (table3) disable warm-start reuse: every round
//!                re-solves from scratch. The reference path — output
//!                and journals are byte-identical to the default
//!
//! `bench-experiments` times table3/fig17/fig18 at 1 thread vs N threads
//! (default: all cores) and writes the measured speedups plus the
//! Table-3 fidelity rows as the v2 baseline document (default:
//! results/BENCH_experiments.json).
//!
//! `audit` is the cross-run analytics layer (`vdx-audit`, DESIGN.md
//! §11): `ingest` folds journals, bench reports and Criterion
//! `target/criterion/*/*/new/estimates.json` microbenchmarks into the
//! columnar store (default: results/audit), `query`/`report` answer
//! cross-run questions over it (see `solver-bench` for microbenchmark
//! drift), and `--baseline` re-runs table3 at the baseline's seed/scale
//! and fails on regressions beyond the thresholds.
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use vdx_obs::{Event, Journal, JournalProbe, Probe, Stopwatch, SCHEMA_VERSION};
use vdx_sim::experiment::{
    ext_faults, ext_hybrid, ext_noise, ext_stability, fig10_15, fig16, fig17, fig18, fig3, fig4,
    fig5, fig7, table1, table3,
};
use vdx_sim::{obs_report, Scenario, ScenarioConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig3|fig4|fig5|fig7|table1|table3|fig10..fig15|fig16|fig17|fig18|\
         ext-stability|ext-hybrid|ext-noise|faults|all> [--small] [--seed N] [--json] \
         [--journal PATH] [--threads N] [--rounds N] [--solver-cold]\n\
         \x20      repro obs-report <journal.jsonl>\n\
         \x20      repro bench-experiments [--small] [--seed N] [--threads N] [--out PATH]\n\
         \x20      repro audit <ingest|query|report|--baseline PATH> (see `repro audit`)"
    );
    ExitCode::FAILURE
}

/// Runs `f` inside a rayon pool of `n` threads, so the experiment
/// engine's round fan-out uses exactly that many workers. `None` keeps
/// the ambient (default) pool.
#[cfg(feature = "parallel")]
fn with_threads<R: Send>(threads: Option<usize>, f: impl FnOnce() -> R + Send) -> R {
    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool")
            .install(f),
        None => f(),
    }
}

/// Without the `parallel` feature everything is serial; `--threads` is
/// accepted and ignored.
#[cfg(not(feature = "parallel"))]
fn with_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    let _ = threads;
    f()
}

/// Wall-clock start of the run, Unix milliseconds (zeroed by the journal
/// determinism tooling; see `Event::zero_wall_clock`).
// Allowed wall-clock read: the run-header timestamp is zeroed before any
// byte-identity comparison (vdx-lint allowlist entry; DESIGN.md §10).
#[allow(clippy::disallowed_methods)]
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else {
        return usage();
    };

    if which == "obs-report" {
        let Some(path) = args.get(1) else {
            eprintln!("usage: repro obs-report <journal.jsonl>");
            return ExitCode::FAILURE;
        };
        return match vdx_obs::read_journal(path) {
            Ok(events) => {
                print!("{}", obs_report::report(&events));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs-report: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if which == "bench-experiments" {
        return bench_experiments(&args);
    }

    if which == "audit" {
        return audit(&args[1..]);
    }

    let small = args.iter().any(|a| a == "--small");
    let json = args.iter().any(|a| a == "--json");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let journal_path = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let rounds = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    let solver_cold = args.iter().any(|a| a == "--solver-cold");

    let mut config = if small {
        ScenarioConfig::small()
    } else {
        ScenarioConfig::default()
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }

    let run_clock = Stopwatch::start();
    let probe: Option<Arc<JournalProbe>> = match &journal_path {
        Some(path) => match Journal::create(path) {
            Ok(journal) => Some(Arc::new(JournalProbe::new(journal))),
            Err(e) => {
                eprintln!("cannot create journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some(p) = &probe {
        p.emit(Event::RunHeader {
            schema: SCHEMA_VERSION,
            experiment: which.clone(),
            seed: config.seed,
            scale: if small { "small" } else { "full" }.to_string(),
            started_unix_ms: unix_ms(),
            threads: threads.map_or(0, |n| n as u64),
            git_commit: git_commit(),
        });
        p.emit(Event::PhaseStarted {
            phase: "build_scenario".into(),
        });
    }

    eprintln!(
        "building scenario: {} cities, {} sessions, seed {} ...",
        config.world.cities, config.trace.sessions, config.seed
    );
    let build_clock = Stopwatch::start();
    let mut scenario = Scenario::build(config);
    if let Some(p) = &probe {
        p.emit(Event::PhaseFinished {
            phase: "build_scenario".into(),
            wall_us: build_clock.elapsed_us(),
        });
        scenario.set_probe(p.clone() as Arc<dyn Probe>);
    }
    eprintln!(
        "scenario ready: {} groups, {} CDNs, {} clusters",
        scenario.groups.len(),
        scenario.fleet.cdns.len(),
        scenario.fleet.clusters.len()
    );

    let accounting_aliases = ["fig10", "fig11", "fig12", "fig13", "fig14", "fig15"];
    let run_one = |name: &str| -> Option<String> {
        if let Some(p) = &probe {
            p.emit(Event::PhaseStarted {
                phase: name.to_string(),
            });
        }
        let phase_clock = Stopwatch::start();
        let out = with_threads(threads, || match name {
            "fig3" => {
                let r = fig3::run(&scenario);
                Some(with_json(fig3::render(&r), &r, json))
            }
            "fig4" => {
                let r = fig4::run(&scenario);
                Some(with_json(fig4::render(&r), &r, json))
            }
            "fig5" => {
                let r = fig5::run(&scenario);
                Some(with_json(fig5::render(&r), &r, json))
            }
            "fig7" => {
                let r = fig7::run(&scenario);
                Some(with_json(fig7::render(&r), &r, json))
            }
            "table1" => {
                let r = table1::run(&scenario);
                Some(with_json(table1::render(&r), &r, json))
            }
            "table3" => {
                // Always the warm-start engine: with the default
                // --rounds 1 it degenerates to one round per design,
                // and --solver-cold flips only the reuse strategy, so
                // output and journals never depend on either flag.
                let r = table3::run_multi(&scenario, rounds, !solver_cold);
                Some(with_json(table3::render(&r), &r, json))
            }
            name if accounting_aliases.contains(&name) || name == "accounting" => {
                let r = fig10_15::run(&scenario);
                let mut out = fig10_15::render_cdn_views(&r);
                out.push('\n');
                out.push_str(&fig10_15::render_country_views(&r));
                Some(with_json(out, &r, json))
            }
            "fig16" => {
                let n = if small { 40 } else { 200 };
                let r = fig16::run(&scenario, n);
                Some(with_json(fig16::render(&r), &r, json))
            }
            "fig17" => {
                let r = fig17::run(&scenario);
                Some(with_json(fig17::render(&r), &r, json))
            }
            "fig18" => {
                let r = fig18::run(&scenario);
                Some(with_json(fig18::render(&r), &r, json))
            }
            "ext-stability" => {
                let r = ext_stability::run(&scenario, 8);
                Some(with_json(ext_stability::render(&r), &r, json))
            }
            "ext-hybrid" => {
                let r = ext_hybrid::run(&scenario);
                Some(with_json(ext_hybrid::render(&r), &r, json))
            }
            "ext-noise" => {
                let r = ext_noise::run(&scenario);
                Some(with_json(ext_noise::render(&r), &r, json))
            }
            "faults" | "ext-faults" => {
                let r = ext_faults::run(&scenario);
                Some(with_json(ext_faults::render(&r), &r, json))
            }
            _ => None,
        });
        if let (Some(p), Some(_)) = (&probe, &out) {
            p.emit(Event::PhaseFinished {
                phase: name.to_string(),
                wall_us: phase_clock.elapsed_us(),
            });
        }
        out
    };

    let ok = if which == "all" {
        for name in [
            "fig3",
            "fig4",
            "fig5",
            "table1",
            "fig7",
            "table3",
            "accounting",
            "fig16",
            "fig17",
            "fig18",
            "ext-stability",
            "ext-hybrid",
            "ext-noise",
            "ext-faults",
        ] {
            eprintln!("running {name} ...");
            let out = run_one(name).expect("known experiment");
            println!("{out}");
        }
        true
    } else {
        match run_one(which) {
            Some(out) => {
                println!("{out}");
                true
            }
            None => false,
        }
    };

    let _ = run_one;
    drop(scenario);
    if let Some(p) = probe {
        for event in vdx_obs::metrics::global().drain() {
            p.emit(event);
        }
        let journal = match Arc::try_unwrap(p) {
            Ok(inner) => match inner.into_journal() {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("journal write errors: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!("journal probe still shared; cannot finish the journal");
                return ExitCode::FAILURE;
            }
        };
        let path = journal.path().display().to_string();
        if let Err(e) = journal.finish(which, run_clock.elapsed_ms()) {
            eprintln!("failed to finish journal: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("journal written: {path}");
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        usage()
    }
}

fn with_json<T: serde::Serialize>(mut text: String, value: &T, json: bool) -> String {
    if json {
        text.push_str("\njson: ");
        text.push_str(&serde_json::to_string(value).expect("serializable"));
        text.push('\n');
    }
    text
}

/// Parses the value after `--flag`, if both are present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Short git commit of the surrounding checkout, for run provenance in
/// journals and baselines. `unknown` outside a checkout or without git.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Converts a table3 run into the audit crate's baseline row shape.
fn to_table3_rows(result: &table3::Table3Result) -> Vec<vdx_audit::Table3Row> {
    result
        .rows
        .iter()
        .map(|(design, m)| vdx_audit::Table3Row {
            design: design.clone(),
            cost: m.cost,
            score: m.score,
            distance_miles: m.distance_miles,
            load_pct: m.load_pct,
            congested_pct: m.congested_pct,
        })
        .collect()
}

/// Times the round-parallel experiments at 1 thread vs `--threads` (all
/// cores by default) over one shared scenario, then records the Table-3
/// fidelity rows, and writes both as the pretty-JSON v2 baseline
/// document (`vdx_audit::BaselineReport`). Both timings run the
/// identical code path through differently sized rayon pools, so the
/// comparison isolates the fan-out.
fn bench_experiments(args: &[String]) -> ExitCode {
    let small = args.iter().any(|a| a == "--small");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let out_path =
        flag_value(args, "--out").unwrap_or_else(|| "results/BENCH_experiments.json".to_string());

    let mut config = if small {
        ScenarioConfig::small()
    } else {
        ScenarioConfig::default()
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let seed_value = config.seed;
    eprintln!(
        "building scenario: {} cities, {} sessions, seed {} ...",
        config.world.cities, config.trace.sessions, seed_value
    );
    let scenario = Scenario::build(config);

    let experiments: [(&str, fn(&Scenario)); 3] = [
        ("table3", |s| {
            let _ = table3::run(s);
        }),
        ("fig17", |s| {
            let _ = fig17::run(s);
        }),
        ("fig18", |s| {
            let _ = fig18::run(s);
        }),
    ];
    let mut entries = Vec::new();
    for (name, run) in experiments {
        eprintln!("benchmarking {name}: 1 vs {threads} threads ...");
        let clock = Stopwatch::start();
        with_threads(Some(1), || run(&scenario));
        let serial_ms = clock.elapsed_ms();
        let clock = Stopwatch::start();
        with_threads(Some(threads), || run(&scenario));
        let parallel_ms = clock.elapsed_ms();
        let speedup = serial_ms as f64 / parallel_ms.max(1) as f64;
        eprintln!("  {name}: {serial_ms} ms serial, {parallel_ms} ms on {threads} threads ({speedup:.2}x)");
        entries.push(vdx_audit::BenchEntry {
            name: name.to_string(),
            serial_ms,
            parallel_ms,
            speedup,
        });
    }
    // Warm-start vs cold re-solves on the multi-round table3 hot loop,
    // both single-threaded so the comparison isolates the solve
    // strategy: serial_ms is the cold path, parallel_ms the warm one.
    const HOT_LOOP_ROUNDS: u64 = 8;
    let name = format!("table3_rounds{HOT_LOOP_ROUNDS}_cold_vs_warm");
    eprintln!("benchmarking {name}: cold vs warm solves ...");
    let clock = Stopwatch::start();
    with_threads(Some(1), || {
        let _ = table3::run_multi(&scenario, HOT_LOOP_ROUNDS, false);
    });
    let cold_ms = clock.elapsed_ms();
    let clock = Stopwatch::start();
    with_threads(Some(1), || {
        let _ = table3::run_multi(&scenario, HOT_LOOP_ROUNDS, true);
    });
    let warm_ms = clock.elapsed_ms();
    let speedup = cold_ms as f64 / warm_ms.max(1) as f64;
    eprintln!("  {name}: {cold_ms} ms cold, {warm_ms} ms warm ({speedup:.2}x)");
    entries.push(vdx_audit::BenchEntry {
        name,
        serial_ms: cold_ms,
        parallel_ms: warm_ms,
        speedup,
    });

    eprintln!("recording table3 fidelity rows ...");
    let fidelity = with_threads(Some(threads), || table3::run(&scenario));
    let report = vdx_audit::BaselineReport {
        schema: vdx_audit::BASELINE_SCHEMA,
        scale: if small { "small" } else { "full" }.to_string(),
        seed: seed_value,
        threads: threads as u64,
        git_commit: git_commit(),
        entries,
        table3: to_table3_rows(&fidelity),
    };
    let text = report.to_json_pretty();
    if let Some(parent) = Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    match std::fs::write(&out_path, text) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro audit ...` — the cross-run analytics store and the regression
/// gate (`vdx-audit`, DESIGN.md §11).
fn audit(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--baseline") {
        return audit_gate(args);
    }

    let queries: Vec<String> = vdx_audit::ALL_QUERIES
        .iter()
        .map(|q| format!("  {:<16} {}", q.name(), q.describe()))
        .collect();
    let audit_usage = || -> ExitCode {
        eprintln!(
            "usage: repro audit ingest <journal.jsonl|bench.json|estimates.json>... [--store DIR]\n\
             \x20      repro audit query <name> [--store DIR]\n\
             \x20      repro audit report [--store DIR]\n\
             \x20      repro audit --baseline PATH [--metric-tol PCT] [--wall-tol PCT] \
             [--threads N]\n\
             queries:\n{}",
            queries.join("\n")
        );
        ExitCode::FAILURE
    };

    let store_dir = flag_value(args, "--store").unwrap_or_else(|| "results/audit".to_string());
    let open_store =
        || -> Result<vdx_audit::Store, String> { vdx_audit::Store::open(Path::new(&store_dir)) };

    match args.first().map(String::as_str) {
        Some("ingest") => {
            let mut paths: Vec<String> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--store" {
                    rest.next();
                } else {
                    paths.push(a.clone());
                }
            }
            if paths.is_empty() {
                return audit_usage();
            }
            let mut store = match open_store() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("audit: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for path in &paths {
                match store.ingest(Path::new(path)) {
                    Ok(vdx_audit::IngestOutcome::Ingested { run_id, rows }) => {
                        eprintln!("ingested {path} as run {run_id} ({rows} rows)");
                    }
                    Ok(vdx_audit::IngestOutcome::Duplicate { run_id }) => {
                        eprintln!("{path} already ingested as run {run_id}; skipping");
                    }
                    Err(e) => {
                        eprintln!("audit: cannot ingest {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            match store.save() {
                Ok(()) => {
                    eprintln!("audit store saved: {store_dir}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("audit: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("query") => {
            let Some(kind) = args.get(1).and_then(|n| vdx_audit::QueryKind::parse(n)) else {
                return audit_usage();
            };
            match open_store() {
                Ok(store) => {
                    let result = vdx_audit::query::run(&store, kind);
                    print!("{}", vdx_audit::render::render_query(&result));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("audit: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("report") => match open_store() {
            Ok(store) => {
                print!("{}", vdx_audit::report(&store));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("audit: {e}");
                ExitCode::FAILURE
            }
        },
        _ => audit_usage(),
    }
}

/// `repro audit --baseline PATH`: re-runs table3 at the baseline's
/// seed/scale and fails (exit code 1) on Table-3 regressions beyond the
/// thresholds. Wall times are only compared when the caller re-times
/// the experiments; the fidelity half is always checked.
fn audit_gate(args: &[String]) -> ExitCode {
    let Some(path) = flag_value(args, "--baseline") else {
        eprintln!("audit: --baseline needs a path");
        return ExitCode::FAILURE;
    };
    let baseline = match vdx_audit::BaselineReport::read(Path::new(&path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = vdx_audit::GateConfig::default();
    if let Some(tol) = flag_value(args, "--metric-tol").and_then(|v| v.parse::<f64>().ok()) {
        cfg.metric_tol_pct = tol;
    }
    if let Some(tol) = flag_value(args, "--wall-tol").and_then(|v| v.parse::<f64>().ok()) {
        cfg.wall_tol_pct = tol;
    }
    let threads = flag_value(args, "--threads").and_then(|v| v.parse::<usize>().ok());

    let mut config = if baseline.scale == "small" {
        ScenarioConfig::small()
    } else {
        ScenarioConfig::default()
    };
    config.seed = baseline.seed;
    eprintln!(
        "gate: rerunning table3 at scale={} seed={} against {path}",
        baseline.scale, baseline.seed
    );
    let scenario = Scenario::build(config);
    let result = with_threads(threads, || table3::run(&scenario));
    let outcome = vdx_audit::gate::compare(&baseline, &to_table3_rows(&result), &[], &cfg);
    print!("{}", outcome.render());
    if outcome.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
