//! Deterministic parallel experiment engine.
//!
//! Decision rounds are pure functions of `(scenario, round id, design,
//! policy)`, so independent rounds of one experiment can run concurrently.
//! Determinism is preserved by construction:
//!
//! * round ids are assigned by the experiment driver *before* fan-out
//!   (never drawn from a shared counter), so each round's journal events
//!   are identical regardless of schedule;
//! * results come back through an indexed collect, so the output vector
//!   order matches the spec order exactly;
//! * when a probe is attached, each round journals into its own private
//!   buffer and the buffers are flushed to the shared probe in spec
//!   order — the journal byte stream is the same for 1 or N threads.
//!
//! With the default-on `parallel` feature the fan-out uses rayon (so it
//! honours the ambient thread pool, e.g. `repro --threads N`); without it
//! everything runs serially on the calling thread with identical results.

use crate::scenario::Scenario;
#[cfg(feature = "parallel")]
use rayon::prelude::*;
use vdx_broker::{CpPolicy, OptimizeContext};
use vdx_core::{Design, RoundId, RoundOutcome};
use vdx_obs::{MemoryProbe, NoopProbe, Probe};

/// One independent decision round an experiment wants run.
#[derive(Debug, Clone, Copy)]
pub struct RoundSpec {
    /// Caller-assigned round id, journaled in every event of the round.
    pub round: RoundId,
    /// The design to run.
    pub design: Design,
    /// The content-provider policy.
    pub policy: CpPolicy,
    /// Marketplace bid-count override (Fig 18), if any.
    pub bid_count: Option<usize>,
}

impl RoundSpec {
    /// A spec with no bid-count override.
    pub fn new(round: u64, design: Design, policy: CpPolicy) -> RoundSpec {
        RoundSpec {
            round: RoundId(round),
            design,
            policy,
            bid_count: None,
        }
    }

    /// Sets the marketplace bid-count override.
    pub fn with_bid_count(mut self, bids: usize) -> RoundSpec {
        self.bid_count = Some(bids);
        self
    }
}

/// Maps `f` over `items`, in parallel when the `parallel` feature is on,
/// returning results in item order either way.
pub fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync + Send,
{
    #[cfg(feature = "parallel")]
    {
        items.par_iter().map(f).collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        items.iter().map(f).collect()
    }
}

/// Runs every spec against `scenario` and returns the outcomes in spec
/// order. Journal events, if a probe is attached to the scenario, are
/// buffered per round and emitted in spec order, so the journal is
/// byte-identical to a serial run.
pub fn run_rounds(scenario: &Scenario, specs: &[RoundSpec]) -> Vec<RoundOutcome> {
    let shared = scenario.probe();
    if shared.enabled() {
        let pairs = map_indexed(specs, |spec| {
            let buffer = MemoryProbe::new();
            let outcome = scenario.run_round_probed(
                spec.round,
                spec.design,
                spec.policy,
                spec.bid_count,
                &buffer,
            );
            (outcome, buffer.take())
        });
        let mut outcomes = Vec::with_capacity(pairs.len());
        for (outcome, events) in pairs {
            for event in events {
                shared.emit(event);
            }
            outcomes.push(outcome);
        }
        outcomes
    } else {
        map_indexed(specs, |spec| {
            scenario.run_round_probed(
                spec.round,
                spec.design,
                spec.policy,
                spec.bid_count,
                &NoopProbe,
            )
        })
    }
}

/// Runs each spec as a **series** of `rounds` consecutive decision rounds
/// sharing one warm-start [`OptimizeContext`] (the round hot loop), and
/// returns each series' *last* outcome in spec order.
///
/// A series is one sequential round stream — the unit of warm-start
/// sharing — so series fan out in parallel (one context each, no
/// cross-thread state) while rounds within a series run in order. The
/// series starting at `spec.round` journals round ids
/// `spec.round .. spec.round + rounds`; callers must assign
/// non-overlapping id blocks.
///
/// With `reuse` off every round re-solves from scratch (the
/// `--solver-cold` reference); outcomes and journal bytes are identical
/// either way, because the warm path only skips recomputing answers that
/// determinism pins down and the journaled `SolverResolve` delta lines
/// are a pure function of the round sequence. Per-series journal buffers
/// are flushed in spec order, exactly like [`run_rounds`], so `--threads
/// N` journals stay byte-identical too.
pub fn run_series(
    scenario: &Scenario,
    series: &[RoundSpec],
    rounds: u64,
    reuse: bool,
) -> Vec<RoundOutcome> {
    assert!(rounds >= 1, "a series needs at least one round");
    let run_one_series = |spec: &RoundSpec, probe: &dyn Probe| -> RoundOutcome {
        let mut ctx = OptimizeContext::new();
        ctx.set_reuse(reuse);
        let mut last = None;
        for j in 0..rounds {
            last = Some(scenario.run_round_probed_ctx(
                RoundId(spec.round.0 + j),
                spec.design,
                spec.policy,
                spec.bid_count,
                probe,
                &mut ctx,
            ));
        }
        last.expect("rounds >= 1")
    };
    let shared = scenario.probe();
    if shared.enabled() {
        let pairs = map_indexed(series, |spec| {
            let buffer = MemoryProbe::new();
            let outcome = run_one_series(spec, &buffer);
            (outcome, buffer.take())
        });
        let mut outcomes = Vec::with_capacity(pairs.len());
        for (outcome, events) in pairs {
            for event in events {
                shared.emit(event);
            }
            outcomes.push(outcome);
        }
        outcomes
    } else {
        map_indexed(series, |spec| run_one_series(spec, &NoopProbe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::shared_small;
    use std::sync::Arc;
    use vdx_obs::Event;

    #[test]
    fn run_rounds_matches_serial_runs_in_spec_order() {
        let s = shared_small();
        let specs = [
            RoundSpec::new(0, Design::Brokered, CpPolicy::balanced()),
            RoundSpec::new(1, Design::Marketplace, CpPolicy::balanced()),
            RoundSpec::new(2, Design::BestLookup, CpPolicy::balanced()),
        ];
        let outcomes = run_rounds(s, &specs);
        assert_eq!(outcomes.len(), specs.len());
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            let serial = s.run_round(spec.round, spec.design, spec.policy);
            assert_eq!(serial.assignment.choice, outcome.assignment.choice);
        }
    }

    #[test]
    fn run_rounds_journals_in_spec_order() {
        let mut s = crate::scenario::Scenario::build(crate::scenario::ScenarioConfig::small());
        let probe = Arc::new(vdx_obs::MemoryProbe::new());
        s.set_probe(probe.clone());
        let specs = [
            RoundSpec::new(5, Design::Marketplace, CpPolicy::balanced()),
            RoundSpec::new(3, Design::Brokered, CpPolicy::balanced()),
        ];
        run_rounds(&s, &specs);
        let started: Vec<u64> = probe
            .take()
            .iter()
            .filter_map(|e| match e {
                Event::RoundStarted { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        // Events arrive in spec order regardless of execution schedule.
        assert_eq!(started, vec![5, 3]);
    }

    #[test]
    fn warm_and_cold_series_agree_on_outcomes_and_journal_bytes() {
        let mut s = crate::scenario::Scenario::build(crate::scenario::ScenarioConfig::small());
        let probe = Arc::new(vdx_obs::MemoryProbe::new());
        s.set_probe(probe.clone());
        let series = [
            RoundSpec::new(0, Design::Marketplace, CpPolicy::balanced()),
            RoundSpec::new(3, Design::Brokered, CpPolicy::balanced()),
        ];
        let warm = run_series(&s, &series, 3, true);
        let warm_events = probe.take();
        let cold = run_series(&s, &series, 3, false);
        let cold_events = probe.take();
        assert_eq!(warm.len(), 2);
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.assignment.choice, c.assignment.choice);
            assert_eq!(w.assignment.objective, c.assignment.objective);
        }
        // Equal Event values serialize identically, so this is journal
        // byte-identity between the warm and cold strategies.
        assert_eq!(warm_events, cold_events);
        // The scenario is static within a series, so rounds 2.. are
        // warm-eligible and the last outcome equals a one-round run.
        let eligible: Vec<bool> = warm_events
            .iter()
            .filter_map(|e| match e {
                Event::SolverResolve { warm_eligible, .. } => Some(*warm_eligible),
                _ => None,
            })
            .collect();
        assert_eq!(eligible, vec![false, true, true, false, true, true]);
        let single = s.run_round(RoundId(0), Design::Marketplace, CpPolicy::balanced());
        assert_eq!(warm[0].assignment.choice, single.assignment.choice);
    }

    #[test]
    fn bid_count_override_reaches_the_round() {
        let s = shared_small();
        let low = run_rounds(
            s,
            &[RoundSpec::new(0, Design::Marketplace, CpPolicy::balanced()).with_bid_count(1)],
        );
        let plain = s.run_with(Design::Marketplace, CpPolicy::balanced(), Some(1));
        assert_eq!(low[0].assignment.choice, plain.assignment.choice);
    }
}
