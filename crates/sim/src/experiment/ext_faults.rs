//! Extension experiment: availability vs decision quality under faults.
//!
//! The paper evaluates every design over a perfect in-process exchange.
//! This experiment asks what each design is worth when the exchange is
//! *not* perfect: campaigns of Decision Protocol rounds run over lossy
//! links at increasing fault severity, with the DESIGN.md §9 degradation
//! ladder (bounded retransmission, stale-bid reuse, CDN exclusion,
//! Brokered fallback) deciding each round's fate. The output is a
//! degradation curve per design: how many rounds stayed live, how many
//! degraded or fell back, and what the assignments were worth on the
//! ground-truth metric suite.
//!
//! Flat-information designs (Brokered) never consult the exchange, so
//! their rows stay fully live at every severity — the availability price
//! of the richer designs is exactly what this table quantifies.

use crate::engine::map_indexed;
use crate::faults::{run_campaign, CampaignOutcome, FaultPlan, RoundFaults};
use crate::metrics::DesignMetrics;
use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdx_broker::CpPolicy;
use vdx_core::Design;
use vdx_obs::{MemoryProbe, Probe};

/// The fault severities swept (0 = the paper's perfect exchange).
pub const SEVERITY_SWEEP: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Rounds per (design, severity) campaign.
pub const ROUNDS_PER_CAMPAIGN: usize = 4;

/// The designs compared: today's baseline, two intermediate designs, and
/// the full marketplace.
pub const DESIGNS: [Design; 4] = [
    Design::Brokered,
    Design::DynamicMulticluster,
    Design::BestLookup,
    Design::Marketplace,
];

/// The campaign plan at `severity ∈ [0, 1]`: loss, corruption and delay
/// scale linearly; from severity 0.5 one CDN's cluster fails in round 2;
/// from 0.75 the exchange itself is down in round 3. Severity 0 is a
/// fully clean plan.
pub fn plan_for(severity: f64, seed: u64) -> FaultPlan {
    let mut rounds = Vec::with_capacity(ROUNDS_PER_CAMPAIGN);
    for i in 0..ROUNDS_PER_CAMPAIGN {
        let mut faults = RoundFaults {
            drop_chance: 0.3 * severity,
            corrupt_chance: 0.1 * severity,
            delay_ms: (40.0 * severity) as u64,
            jitter_ms: (20.0 * severity) as u64,
            exchange_outage: false,
            failed_cdns: Vec::new(),
        };
        if i == 2 && severity >= 0.5 {
            faults.failed_cdns = vec![0];
        }
        if i == 3 && severity >= 0.75 {
            faults.exchange_outage = true;
        }
        rounds.push(faults);
    }
    FaultPlan {
        rounds,
        seed,
        stale_ttl_rounds: 2,
        deadline_ms: 3_000,
    }
}

/// One (design, severity) campaign, summarized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsCell {
    /// Design name.
    pub design: String,
    /// Fault severity.
    pub severity: f64,
    /// Rounds completed on fresh information.
    pub live: usize,
    /// Rounds completed on stale substitutions / exclusions.
    pub degraded: usize,
    /// Rounds that fell back to Brokered.
    pub fallback: usize,
    /// Mean ground-truth metrics over the campaign's rounds.
    pub metrics: DesignMetrics,
}

/// Fault-campaign results: designs × severities, design-major.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsResult {
    /// One cell per (design, severity).
    pub cells: Vec<FaultsCell>,
}

/// Runs the sweep. Campaigns are independent (each owns its links, agents
/// and stale cache), so cells fan out across threads; journals are
/// flushed in cell order, byte-identical for any thread count.
pub fn run(scenario: &Scenario) -> FaultsResult {
    let seed = scenario.config.seed ^ 0xFA17;
    let mut cells: Vec<(u64, Design, f64)> = Vec::new();
    for &design in &DESIGNS {
        for &severity in &SEVERITY_SWEEP {
            cells.push((cells.len() as u64, design, severity));
        }
    }

    let shared = scenario.probe();
    let outcomes: Vec<CampaignOutcome> = if shared.enabled() {
        let pairs = map_indexed(&cells, |&(idx, design, severity)| {
            let buffer = Arc::new(MemoryProbe::new());
            let outcome = run_campaign(
                scenario,
                design,
                CpPolicy::balanced(),
                &plan_for(severity, seed),
                idx * 100,
                buffer.clone() as Arc<dyn Probe>,
            );
            (outcome, buffer.take())
        });
        let mut outcomes = Vec::with_capacity(pairs.len());
        for (outcome, events) in pairs {
            for event in events {
                shared.emit(event);
            }
            outcomes.push(outcome);
        }
        outcomes
    } else {
        map_indexed(&cells, |&(idx, design, severity)| {
            run_campaign(
                scenario,
                design,
                CpPolicy::balanced(),
                &plan_for(severity, seed),
                idx * 100,
                vdx_obs::probe::noop(),
            )
        })
    };

    let cells = cells
        .iter()
        .zip(&outcomes)
        .map(|(&(_, design, severity), outcome)| FaultsCell {
            design: design.name(),
            severity,
            live: outcome.live_rounds(),
            degraded: outcome.degraded_rounds(),
            fallback: outcome.fallback_rounds(),
            metrics: outcome.mean_metrics(),
        })
        .collect();
    FaultsResult { cells }
}

/// Renders the degradation table.
pub fn render(result: &FaultsResult) -> String {
    let rows: Vec<Vec<String>> = result
        .cells
        .iter()
        .map(|c| {
            vec![
                c.design.clone(),
                format!("{:.2}", c.severity),
                format!("{}/{}/{}", c.live, c.degraded, c.fallback),
                format!("{:.4}", c.metrics.cost),
                format!("{:.2}", c.metrics.score),
                format!("{:.1}%", c.metrics.congested_pct),
            ]
        })
        .collect();
    let mut out = render_table(
        "Extension: availability vs decision quality under injected faults",
        &[
            "design",
            "severity",
            "live/degr/fall",
            "cost",
            "score",
            "congested",
        ],
        &rows,
    );
    out.push_str(
        "severity scales loss/corruption/delay; 0.5+ fails a CDN in round 2, 0.75+ downs the \
         exchange in round 3\nexchange designs degrade toward Brokered quality as rounds go \
         stale or fall back; Brokered itself never budges\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{compute, MetricsInput};
    use crate::scenario::shared_small;

    #[test]
    fn clean_severity_reproduces_the_pure_numbers() {
        // Acceptance: an all-zero plan reproduces the table3 numbers
        // bit-for-bit, per round, for every design in the sweep.
        let s = shared_small();
        let seed = s.config.seed ^ 0xFA17;
        for design in DESIGNS {
            let plan = plan_for(0.0, seed);
            assert!(plan.is_clean());
            let campaign = run_campaign(
                s,
                design,
                CpPolicy::balanced(),
                &plan,
                0,
                vdx_obs::probe::noop(),
            );
            let pure = s.run(design, CpPolicy::balanced());
            let expected = compute(&MetricsInput {
                scenario: s,
                outcome: &pure,
            });
            assert_eq!(campaign.rounds.len(), ROUNDS_PER_CAMPAIGN);
            for round in &campaign.rounds {
                assert_eq!(
                    round.availability,
                    crate::faults::RoundAvailability::Live,
                    "{design}"
                );
                assert_eq!(round.metrics, expected, "{design}: clean plan is exact");
            }
        }
    }

    #[test]
    fn brokered_is_immune_to_every_severity() {
        let s = shared_small();
        let seed = s.config.seed ^ 0xFA17;
        let campaign = run_campaign(
            s,
            Design::Brokered,
            CpPolicy::balanced(),
            &plan_for(1.0, seed),
            0,
            vdx_obs::probe::noop(),
        );
        let pure = s.run(Design::Brokered, CpPolicy::balanced());
        let expected = compute(&MetricsInput {
            scenario: s,
            outcome: &pure,
        });
        assert_eq!(campaign.live_rounds(), ROUNDS_PER_CAMPAIGN);
        for round in &campaign.rounds {
            assert_eq!(
                round.metrics, expected,
                "flat designs never consult the exchange"
            );
        }
    }

    #[test]
    fn marketplace_degrades_and_falls_back_at_full_severity() {
        let s = shared_small();
        let seed = s.config.seed ^ 0xFA17;
        let campaign = run_campaign(
            s,
            Design::Marketplace,
            CpPolicy::balanced(),
            &plan_for(1.0, seed),
            0,
            vdx_obs::probe::noop(),
        );
        use crate::faults::RoundAvailability;
        // Round 2 loses CDN 0's cluster: the round cannot stay fully live.
        assert_ne!(campaign.rounds[2].availability, RoundAvailability::Live);
        // Round 3 downs the exchange entirely: guaranteed fallback.
        assert_eq!(campaign.rounds[3].availability, RoundAvailability::Fallback);

        let cell = FaultsCell {
            design: Design::Marketplace.name(),
            severity: 1.0,
            live: campaign.live_rounds(),
            degraded: campaign.degraded_rounds(),
            fallback: campaign.fallback_rounds(),
            metrics: campaign.mean_metrics(),
        };
        let text = render(&FaultsResult { cells: vec![cell] });
        assert!(text.contains("severity"));
        assert!(text.contains("Marketplace"));
    }
}
