//! Extension experiment: hybrid pricing (§8 of the paper).
//!
//! > "More nuanced CDN pricing schemes (e.g., low-but-variable pricing
//! > combined with high-but-flat pricing, similar to Amazon EC2) could
//! > offer CPs more control in meeting their goals, while retaining
//! > similarity to today's flat-rate pricing."
//!
//! Under hybrid pricing every bid is offered at
//! `min(flat contract price, dynamic per-cluster price)` — the CP keeps
//! the flat rate as a *cap* (familiar billing, bounded worst case) while
//! still benefiting from cheap clusters. This experiment compares the CP's
//! total bill and the CDNs' economics under flat, dynamic, and hybrid
//! pricing.

use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::{optimize, CpPolicy, OptimizeMode};
use vdx_core::{settle, Design, RoundId, RoundOutcome};

/// One pricing scheme's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeOutcome {
    /// Scheme name.
    pub name: String,
    /// The CP's total bill per second.
    pub cp_bill: f64,
    /// Number of serving CDNs that lose money.
    pub losing_cdns: usize,
    /// Total CDN profit per second.
    pub total_profit: f64,
}

/// Hybrid-pricing results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridResult {
    /// Flat / dynamic / hybrid outcomes.
    pub schemes: Vec<SchemeOutcome>,
}

/// Runs the three pricing schemes over the same scenario.
pub fn run(scenario: &Scenario) -> HybridResult {
    let policy = CpPolicy::balanced();
    let flat = scenario.run_round(RoundId(0), Design::Brokered, policy);
    let dynamic = scenario.run_round(RoundId(1), Design::Marketplace, policy);
    let hybrid = run_hybrid(scenario, policy);

    let mk = |name: &str, outcome: &RoundOutcome| -> SchemeOutcome {
        let settled = settle(outcome, &scenario.world, &scenario.fleet);
        SchemeOutcome {
            name: name.to_string(),
            cp_bill: settled
                .per_cdn
                .iter()
                .map(|c| c.ledger.revenue.as_f64())
                .sum(),
            losing_cdns: settled.losing_cdns(),
            total_profit: settled.total_profit().as_f64(),
        }
    };
    HybridResult {
        schemes: vec![
            mk("flat (Brokered)", &flat),
            mk("dynamic (VDX)", &dynamic),
            mk("hybrid (min of both)", &hybrid),
        ],
    }
}

/// A Marketplace round re-priced with the EC2-style hybrid rule.
fn run_hybrid(scenario: &Scenario, policy: CpPolicy) -> RoundOutcome {
    let mut outcome = scenario.run_round(RoundId(2), Design::Marketplace, policy);
    // Cap each bid's price at the bidding CDN's flat contract price, then
    // let the broker re-optimize against the capped prices.
    for opts in &mut outcome.problem.options {
        for o in opts.iter_mut() {
            let flat = scenario.contracts[o.cdn.index()].billed_price_per_mb();
            o.price_per_mb = o.price_per_mb.min(flat);
        }
    }
    let assignment = optimize(&outcome.problem, &policy, &OptimizeMode::Heuristic);
    RoundOutcome {
        design: Design::Marketplace,
        problem: outcome.problem,
        assignment,
    }
}

/// Renders the result.
pub fn render(result: &HybridResult) -> String {
    let rows: Vec<Vec<String>> = result
        .schemes
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.2}", s.cp_bill),
                s.losing_cdns.to_string(),
                format!("{:+.2}", s.total_profit),
            ]
        })
        .collect();
    let mut out = render_table(
        "Extension (§8): flat vs dynamic vs hybrid (EC2-style) pricing",
        &["scheme", "CP bill/s", "losing CDNs", "CDN profit/s"],
        &rows,
    );
    out.push_str(
        "hybrid caps every bid at the flat rate: the CP's bill can only improve on flat\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_never_bills_cp_more_than_flat() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(s);
        let bill = |name: &str| {
            r.schemes
                .iter()
                .find(|x| x.name.starts_with(name))
                .expect("scheme")
                .cp_bill
        };
        assert!(
            bill("hybrid") <= bill("flat") + 1e-6,
            "hybrid {} vs flat {}",
            bill("hybrid"),
            bill("flat")
        );
        assert!(render(&r).contains("hybrid"));
    }

    #[test]
    fn dynamic_pricing_keeps_cdns_whole() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(s);
        let dynamic = r
            .schemes
            .iter()
            .find(|x| x.name.starts_with("dynamic"))
            .expect("scheme");
        assert_eq!(dynamic.losing_cdns, 0);
    }
}
