//! Extension experiment: sensitivity to measurement noise.
//!
//! Every result in the paper (and in `table3`) lets both sides estimate
//! scores perfectly. Real operators bid and optimize on noisy estimates
//! (§3.3: both CDNs and brokers have "limited vantage points into the
//! network"; §3.1: scores come from periodic pings). This experiment
//! re-runs the Marketplace round with EWMA estimates built from ±noise %
//! samples, then evaluates the resulting assignment against *ground truth*
//! — quantifying how much decision quality the marketplace loses as
//! measurement error grows, and how much the paper's §3.3 "sharing mapping
//! information" argument is worth.

use crate::engine::map_indexed;
use crate::metrics::{compute, DesignMetrics, MetricsInput};
use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::{CpPolicy, OptimizeMode};
use vdx_core::{run_decision_round, Design, RoundInputs, RoundOutcome};
use vdx_netsim::{NoisyMeasurer, ScoreEstimator};

/// The relative noise levels swept (± fraction per sample).
pub const NOISE_SWEEP: [f64; 5] = [0.0, 0.1, 0.2, 0.4, 0.8];

/// Samples folded into each estimate; more samples average noise away —
/// this is the "several times per minute" measurement budget.
pub const SAMPLES_PER_PAIR: u64 = 5;

/// Noise-sensitivity results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseResult {
    /// `(noise level, ground-truth metrics of the noisy decision)`.
    pub points: Vec<(f64, DesignMetrics)>,
}

/// Runs the sweep. Each noise level seeds its own measurer, so the five
/// points are independent and fan out across threads.
pub fn run(scenario: &Scenario) -> NoiseResult {
    let sites: Vec<vdx_geo::CityId> = scenario.fleet.clusters.iter().map(|c| c.city).collect();
    let clients: Vec<vdx_geo::CityId> = scenario.groups.iter().map(|g| g.city).collect();

    let points = map_indexed(&NOISE_SWEEP, |&noise| {
        let outcome = run_with_noise(scenario, noise, &clients, &sites);
        // Metrics are computed against the *true* scores of the chosen
        // clusters, not the estimates the broker believed.
        let truthed = re_truth(scenario, outcome);
        let m = compute(&MetricsInput {
            scenario,
            outcome: &truthed,
        });
        (noise, m)
    });
    NoiseResult { points }
}

fn run_with_noise(
    scenario: &Scenario,
    noise: f64,
    clients: &[vdx_geo::CityId],
    sites: &[vdx_geo::CityId],
) -> RoundOutcome {
    let measurer = NoisyMeasurer::new(scenario.config.seed ^ 0xE571, noise);
    let mut estimator = ScoreEstimator::new(0.3);
    estimator.warm_up(clients, sites, SAMPLES_PER_PAIR, &measurer, |a, b| {
        scenario.score_of(a, b)
    });
    let inputs = RoundInputs {
        world: &scenario.world,
        fleet: &scenario.fleet,
        contracts: &scenario.contracts,
        groups: &scenario.groups,
        background_load_kbps: &scenario.background_load,
        policy: CpPolicy::balanced(),
        mode: OptimizeMode::Heuristic,
        bid_count: None,
        margins: None,
    };
    run_decision_round(Design::Marketplace, &inputs, |a, b| {
        estimator
            .estimate(a, b)
            // Pairs outside the warmed set (never true here) fall back to
            // ground truth.
            .unwrap_or_else(|| scenario.score_of(a, b))
    })
}

/// Replaces every option's (estimated) score with the true score so the
/// metric suite judges the decision by reality.
fn re_truth(scenario: &Scenario, mut outcome: RoundOutcome) -> RoundOutcome {
    for (g, opts) in outcome.problem.options.iter_mut().enumerate() {
        let city = outcome.problem.groups[g].city;
        for o in opts.iter_mut() {
            let site = scenario.fleet.clusters[o.cluster.index()].city;
            o.score = scenario.score_of(city, site);
        }
    }
    outcome
}

/// Renders the result.
pub fn render(result: &NoiseResult) -> String {
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|(noise, m)| {
            vec![
                format!("{:.0}%", noise * 100.0),
                format!("{:.4}", m.cost),
                format!("{:.2}", m.score),
                format!("{:.0}", m.distance_miles),
                format!("{:.1}%", m.congested_pct),
            ]
        })
        .collect();
    let mut out = render_table(
        "Extension: marketplace decision quality vs measurement noise (ground-truth metrics)",
        &[
            "sample noise",
            "cost",
            "true score",
            "distance",
            "congested",
        ],
        &rows,
    );
    out.push_str(
        "each pair estimated from 5 noisy samples (EWMA); quality should degrade gracefully\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_matches_the_clairvoyant_round() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(s);
        let clair = s.run(Design::Marketplace, CpPolicy::balanced());
        let clair_m = compute(&MetricsInput {
            scenario: s,
            outcome: &clair,
        });
        let (noise, zero_m) = r.points[0];
        assert_eq!(noise, 0.0);
        assert!(
            (zero_m.cost - clair_m.cost).abs() < 1e-9,
            "zero noise is exact"
        );
        assert!((zero_m.score - clair_m.score).abs() < 1e-9);
    }

    #[test]
    fn noise_degrades_quality_gracefully() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(s);
        let zero = r.points[0].1;
        let worst = r.points.last().expect("points").1;
        // The objective combines score and cost; under heavy noise the
        // decision gets worse on the true objective, but not catastrophic.
        let objective = |m: &DesignMetrics| m.mean_score + 30.0 * m.mean_cost;
        assert!(
            objective(&worst) >= objective(&zero) - 1e-9,
            "noise should not improve the true objective"
        );
        assert!(
            objective(&worst) < 3.0 * objective(&zero),
            "80% sample noise should degrade, not destroy: {} vs {}",
            objective(&worst),
            objective(&zero)
        );
        assert!(render(&r).contains("noise"));
    }
}
