//! Extension experiment: multi-round traffic predictability.
//!
//! Table 2 grades designs on Traffic Predictability but the paper's
//! evaluation is a single snapshot round; §6.3 argues ("we argue instead
//! that, in VDX, CDNs can learn risk-averse bidding strategies over time
//! that will likely provide traffic predictability") and leaves the
//! dynamics as future work. This experiment runs the dynamics: several
//! Decision Protocol rounds over slowly drifting demand, with marketplace
//! CDNs shading their margins from Accept feedback, and measures
//! round-to-round **traffic churn** — the fraction of CDN-level traffic
//! that moved since the previous round.
//!
//! Expected shape: the marketplace's churn *decreases* as margins converge
//! (losing clusters shade down until they win or bottom out), while a
//! memoryless design's churn stays at whatever the demand drift induces.

use crate::report::render_table;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vdx_broker::{ClientGroup, CpPolicy, OptimizeMode};
use vdx_cdn::{BidPolicy, BidShading};
use vdx_core::{run_decision_round, Design, RoundInputs};

/// Per-round churn for one design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityResult {
    /// Churn per round (fraction of traffic that changed CDN since the
    /// previous round), starting at round 2.
    pub marketplace_churn: Vec<f64>,
    /// Same metric without margin learning (static 1.2 markup).
    pub static_churn: Vec<f64>,
}

/// Runs `rounds` rounds with ±10 % demand drift per round.
pub fn run(scenario: &Scenario, rounds: usize) -> StabilityResult {
    let marketplace_churn = churn_series(scenario, rounds, true);
    let static_churn = churn_series(scenario, rounds, false);
    StabilityResult {
        marketplace_churn,
        static_churn,
    }
}

fn churn_series(scenario: &Scenario, rounds: usize, learn: bool) -> Vec<f64> {
    let mut shading = BidShading::new(BidPolicy::default(), scenario.fleet.clusters.len());
    let mut prev_traffic: Option<Vec<f64>> = None;
    let mut churn = Vec::new();

    for round in 0..rounds {
        // Deterministic demand drift: each group's demand wiggles ±10 %.
        let mut rng = StdRng::seed_from_u64(scenario.config.seed ^ (round as u64) << 8);
        let groups: Vec<ClientGroup> = scenario
            .groups
            .iter()
            .map(|g| {
                let factor = 1.0 + rng.gen_range(-0.10..0.10);
                ClientGroup {
                    demand_kbps: g.demand_kbps * factor,
                    ..g.clone()
                }
            })
            .collect();
        let margins: Vec<vdx_units::Margin> = (0..scenario.fleet.clusters.len())
            .map(|i| shading.margin(vdx_cdn::ClusterId(i as u32)))
            .collect();
        let inputs = RoundInputs {
            world: &scenario.world,
            fleet: &scenario.fleet,
            contracts: &scenario.contracts,
            groups: &groups,
            background_load_kbps: &scenario.background_load,
            policy: CpPolicy::balanced(),
            mode: OptimizeMode::Heuristic,
            bid_count: None,
            margins: if learn { Some(&margins) } else { None },
        };
        let outcome =
            run_decision_round(Design::Marketplace, &inputs, |a, b| scenario.score_of(a, b));

        if learn {
            for (_, option, accepted) in outcome.accept_entries() {
                if accepted {
                    shading.on_accept(option.cluster);
                } else {
                    shading.on_reject(option.cluster);
                }
            }
        }

        // Per-CDN traffic this round.
        let mut traffic = vec![0.0f64; scenario.fleet.cdns.len()];
        for (g, &choice) in outcome.assignment.choice.iter().enumerate() {
            let o = &outcome.problem.options[g][choice];
            traffic[o.cdn.index()] += groups[g].demand_kbps.as_f64();
        }
        if let Some(prev) = &prev_traffic {
            let moved: f64 = traffic
                .iter()
                .zip(prev)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / 2.0;
            let total: f64 = traffic.iter().sum();
            churn.push(moved / total.max(1e-9));
        }
        prev_traffic = Some(traffic);
    }
    churn
}

/// Renders the result.
pub fn render(result: &StabilityResult) -> String {
    let rows: Vec<Vec<String>> = result
        .marketplace_churn
        .iter()
        .zip(&result.static_churn)
        .enumerate()
        .map(|(i, (learned, fixed))| {
            vec![
                format!("{}", i + 2),
                format!("{:.1}%", 100.0 * learned),
                format!("{:.1}%", 100.0 * fixed),
            ]
        })
        .collect();
    let mut out = render_table(
        "Extension: round-to-round CDN traffic churn (lower = more predictable)",
        &["round", "VDX w/ learning", "VDX static markup"],
        &rows,
    );
    out.push_str(
        "paper (§6.3): learned risk-averse bidding should *provide* predictability —\n\
         churn under learning should settle at or below the static-markup level\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_decreases_or_stays_low_with_learning() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(s, 6);
        assert_eq!(r.marketplace_churn.len(), 5);
        // Later rounds must not churn more than the early (exploring)
        // rounds: the shading loop converges.
        let early = r.marketplace_churn[0];
        let late = *r.marketplace_churn.last().expect("rounds");
        assert!(
            late <= early + 0.05,
            "learning churn grew: early {early:.3} late {late:.3}"
        );
        // Every churn value is a sane fraction.
        for &c in r.marketplace_churn.iter().chain(&r.static_churn) {
            assert!((0.0..=1.0).contains(&c));
        }
        assert!(render(&r).contains("churn"));
    }
}
