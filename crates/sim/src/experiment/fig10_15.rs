//! Figs 10–15: the §7.1 accounting views — price-to-cost ratio, traffic
//! served, and profit, per CDN (Figs 10–12) and per country (Figs 13–15),
//! for Brokered vs. VDX (Marketplace).
//!
//! Paper shapes:
//! * Fig 10 — most CDNs' price-to-cost ratio < 1.0 under Brokered; the
//!   profitable ones are centrally deployed.
//! * Fig 11/12 — VDX shifts traffic toward CDNs whose *clusters* are cheap
//!   (notably the distributed CDN 1) and makes every serving CDN profit.
//! * Fig 13 — under Brokered some countries are money-losers, others easy
//!   profit.
//! * Fig 14 — VDX drains traffic from the most expensive countries.
//! * Fig 15 — with VDX, CDNs profit even in expensive countries.

use crate::engine::{run_rounds, RoundSpec};
use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::CpPolicy;
use vdx_core::{settle, Design, Settlement};
use vdx_geo::CountryId;

/// Combined results for Figs 10–15.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccountingResult {
    /// Brokered settlement.
    pub brokered: Settlement,
    /// Marketplace (VDX) settlement.
    pub vdx: Settlement,
    /// Sorted union of countries appearing in either settlement.
    pub country_ids: Vec<CountryId>,
    /// Country codes aligned with `country_ids`.
    pub country_codes: Vec<String>,
    /// Country cost indices (1.0 = average), aligned with `country_ids`.
    pub country_cost_index: Vec<f64>,
}

/// Runs Brokered and VDX (two independent rounds, fanned out) and settles
/// both.
pub fn run(scenario: &Scenario) -> AccountingResult {
    let specs = [
        RoundSpec::new(0, Design::Brokered, CpPolicy::balanced()),
        RoundSpec::new(1, Design::Marketplace, CpPolicy::balanced()),
    ];
    let outcomes = run_rounds(scenario, &specs);
    let brokered = settle(&outcomes[0], &scenario.world, &scenario.fleet);
    let vdx = settle(&outcomes[1], &scenario.world, &scenario.fleet);
    // Union of countries appearing in either settlement, sorted by id.
    let mut country_ids: Vec<CountryId> = brokered
        .per_country
        .keys()
        .chain(vdx.per_country.keys())
        .copied()
        .collect();
    country_ids.sort();
    country_ids.dedup();
    let country_codes = country_ids
        .iter()
        .map(|&c| scenario.world.country(c).code.clone())
        .collect();
    let country_cost_index = country_ids
        .iter()
        .map(|&c| scenario.world.country(c).cost_index)
        .collect();
    AccountingResult {
        brokered,
        vdx,
        country_ids,
        country_codes,
        country_cost_index,
    }
}

/// Renders Figs 10–12 (per-CDN views).
pub fn render_cdn_views(result: &AccountingResult) -> String {
    let mut rows = Vec::new();
    for (b, v) in result.brokered.per_cdn.iter().zip(&result.vdx.per_cdn) {
        rows.push(vec![
            b.cdn.to_string(),
            b.ledger
                .price_to_cost()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}", b.ledger.traffic_kbps.as_f64()),
            format!("{:.0}", v.ledger.traffic_kbps.as_f64()),
            format!("{:+.2}", b.ledger.profit().as_f64()),
            format!("{:+.2}", v.ledger.profit().as_f64()),
        ]);
    }
    let mut out = render_table(
        "Figs 10-12: per-CDN price/cost ratio (Brokered), traffic and profit (Brokered vs VDX)",
        &[
            "CDN",
            "ratio(Brk)",
            "kbps(Brk)",
            "kbps(VDX)",
            "profit(Brk)",
            "profit(VDX)",
        ],
        &rows,
    );
    out.push_str(&format!(
        "losing CDNs: Brokered {}  VDX {}  (paper: most lose under Brokered, none under VDX)\n",
        result.brokered.losing_cdns(),
        result.vdx.losing_cdns()
    ));
    out
}

/// Renders Figs 13–15 (per-country views).
pub fn render_country_views(result: &AccountingResult) -> String {
    let mut rows = Vec::new();
    for (i, &country) in result.country_ids.iter().enumerate() {
        let b = result
            .brokered
            .per_country
            .get(&country)
            .copied()
            .unwrap_or_default();
        let v = result
            .vdx
            .per_country
            .get(&country)
            .copied()
            .unwrap_or_default();
        rows.push(vec![
            result.country_codes[i].clone(),
            format!("{:.2}", result.country_cost_index[i]),
            b.price_to_cost()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}", b.traffic_kbps.as_f64()),
            format!("{:.0}", v.traffic_kbps.as_f64()),
            format!("{:+.2}", b.profit().as_f64()),
            format!("{:+.2}", v.profit().as_f64()),
        ]);
    }
    render_table(
        "Figs 13-15: per-country cost index, ratio (Brokered), traffic and profit (Brokered vs VDX)",
        &["country", "cost idx", "ratio(Brk)", "kbps(Brk)", "kbps(VDX)", "profit(Brk)", "profit(VDX)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> AccountingResult {
        run(crate::scenario::shared_small())
    }

    #[test]
    fn fig10_12_vdx_fixes_cdn_economics() {
        let r = result();
        // Fig 10: Brokered produces losers; Fig 12: VDX none.
        assert!(r.brokered.losing_cdns() >= 1, "Brokered losers expected");
        assert_eq!(r.vdx.losing_cdns(), 0, "VDX losers: {:#?}", r.vdx.per_cdn);
        // Traffic is conserved between the two worlds.
        let t = |s: &Settlement| -> f64 {
            s.per_cdn
                .iter()
                .map(|c| c.ledger.traffic_kbps.as_f64())
                .sum()
        };
        assert!((t(&r.brokered) - t(&r.vdx)).abs() < 1e-6);
        assert!(render_cdn_views(&r).contains("losing CDNs"));
    }

    #[test]
    fn fig14_vdx_drains_expensive_countries() {
        let r = result();
        // Weighted average serving-country cost index should drop under
        // VDX: traffic moves toward cheap countries.
        let avg_cost_index = |s: &Settlement| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for (&country, ledger) in &s.per_country {
                let pos = r
                    .country_ids
                    .iter()
                    .position(|&c| c == country)
                    .expect("country in union");
                num += r.country_cost_index[pos] * ledger.traffic_kbps.as_f64();
                den += ledger.traffic_kbps.as_f64();
            }
            num / den.max(1e-9)
        };
        let brokered_avg = avg_cost_index(&r.brokered);
        let vdx_avg = avg_cost_index(&r.vdx);
        assert!(
            vdx_avg <= brokered_avg + 1e-9,
            "VDX serving-cost index {vdx_avg:.3} vs Brokered {brokered_avg:.3}"
        );
    }

    #[test]
    fn fig15_vdx_profits_everywhere_it_serves() {
        let r = result();
        for (country, ledger) in &r.vdx.per_country {
            if ledger.cost > vdx_core::units::Usd::ZERO {
                assert!(
                    ledger.profit() > vdx_core::units::Usd::ZERO,
                    "VDX loses money in {country}: {ledger:?}"
                );
            }
        }
        assert!(render_country_views(&r).contains("cost idx"));
    }
}
