//! Fig 16: "Profits for 200 'city-centric' CDNs added to our trace."
//!
//! Paper shape: under Brokered, the traditional CDNs keep doing poorly
//! (some get no traffic at all) while the single-cluster city CDNs *always
//! profit* — a single cluster's cost equals its contract price, so the 1.2
//! markup is pure margin. VDX "levels out the playing field".

use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::CpPolicy;
use vdx_core::{settle, Design, RoundId};

/// Fig 16 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Result {
    /// `(cdn name, deployment label, profit Brokered, profit VDX)` for the
    /// traditional CDNs.
    pub traditional: Vec<(String, String, f64, f64)>,
    /// Same tuple for the city-centric CDNs.
    pub city: Vec<(String, String, f64, f64)>,
    /// How many city CDNs served traffic and lost money under Brokered.
    pub losing_city_cdns_brokered: usize,
    /// How many traditional CDNs served traffic and lost money under
    /// Brokered.
    pub losing_traditional_brokered: usize,
    /// Losing CDNs (of either kind) under VDX.
    pub losing_vdx: usize,
}

/// Runs the §7.2 scenario with `n` city-centric CDNs (paper: 200).
pub fn run(scenario: &Scenario, n: usize) -> Fig16Result {
    let expanded = scenario.with_city_centric(n);
    let brokered = settle(
        &expanded.run_round(RoundId(0), Design::Brokered, CpPolicy::balanced()),
        &expanded.world,
        &expanded.fleet,
    );
    let vdx = settle(
        &expanded.run_round(RoundId(1), Design::Marketplace, CpPolicy::balanced()),
        &expanded.world,
        &expanded.fleet,
    );
    let n_traditional = scenario.fleet.cdns.len();
    let mut traditional = Vec::new();
    let mut city = Vec::new();
    for (i, cdn) in expanded.fleet.cdns.iter().enumerate() {
        let row = (
            cdn.id.to_string(),
            cdn.model.label().to_string(),
            brokered.per_cdn[i].ledger.profit().as_f64(),
            vdx.per_cdn[i].ledger.profit().as_f64(),
        );
        if i < n_traditional {
            traditional.push(row);
        } else {
            city.push(row);
        }
    }
    let losing = |rows: &[(String, String, f64, f64)], idx: usize| -> usize {
        rows.iter()
            .filter(|r| if idx == 0 { r.2 < 0.0 } else { r.3 < 0.0 })
            .count()
    };
    Fig16Result {
        losing_city_cdns_brokered: losing(&city, 0),
        losing_traditional_brokered: losing(&traditional, 0),
        losing_vdx: losing(&traditional, 1) + losing(&city, 1),
        traditional,
        city,
    }
}

/// Renders the result (traditional CDNs in full, city CDNs summarised).
pub fn render(result: &Fig16Result) -> String {
    let rows: Vec<Vec<String>> = result
        .traditional
        .iter()
        .map(|(name, label, b, v)| {
            vec![
                name.clone(),
                label.clone(),
                format!("{b:+.2}"),
                format!("{v:+.2}"),
            ]
        })
        .collect();
    let mut out = render_table(
        "Fig 16: traditional CDN profits with 200 city-centric CDNs present",
        &["CDN", "deployment", "profit(Brk)", "profit(VDX)"],
        &rows,
    );
    let served_city = result
        .city
        .iter()
        .filter(|r| r.2 != 0.0 || r.3 != 0.0)
        .count();
    out.push_str(&format!(
        "city CDNs: {} total, {} served traffic, {} lost money under Brokered (paper: 0), \
         {} CDNs of any kind lose under VDX (paper: 0)\n",
        result.city.len(),
        served_city,
        result.losing_city_cdns_brokered,
        result.losing_vdx
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_city_cdns_always_profit_under_brokered() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s, 40);
        assert_eq!(r.city.len(), 40);
        // The §7.2 mechanism: single-cluster CDNs never lose under
        // flat-rate pricing (contract price == cluster cost).
        assert_eq!(
            r.losing_city_cdns_brokered,
            0,
            "city CDNs losing under Brokered: {:?}",
            r.city.iter().filter(|c| c.2 < 0.0).collect::<Vec<_>>()
        );
        // VDX levels the field: nobody loses.
        assert_eq!(r.losing_vdx, 0);
        assert!(render(&r).contains("city CDNs"));
    }

    #[test]
    fn fig16_traditional_cdns_still_struggle_under_brokered() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s, 40);
        assert!(
            r.losing_traditional_brokered >= 1,
            "some traditional CDN should lose under Brokered"
        );
    }
}
