//! Fig 17: "Adjusting optimization to balance performance vs. cost" — the
//! trade-off frontier traced by sweeping the cost weight `wc` in the
//! broker's objective, for VDX and the other designs.
//!
//! Paper shape: VDX's curve dominates — it can cut cost ~44 % at equal
//! distance to Brokered, cut distance ~74 % at equal cost, and at the knee
//! cut both (~31 % cost, ~40 % distance simultaneously).

use crate::engine::{run_rounds, RoundSpec};
use crate::metrics::{compute, MetricsInput};
use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::CpPolicy;
use vdx_core::Design;

/// The wc sweep used for every design's curve (log-ish spacing, dense
/// around the knee).
pub const WC_SWEEP: [f64; 10] = [0.3, 1.0, 3.0, 10.0, 17.0, 30.0, 55.0, 100.0, 180.0, 300.0];

/// One design's trade-off curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TradeoffCurve {
    /// Design name.
    pub design: String,
    /// `(median cost, median distance miles)` per wc in [`WC_SWEEP`].
    pub points: Vec<(f64, f64)>,
}

/// Fig 17 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Result {
    /// One curve per design.
    pub curves: Vec<TradeoffCurve>,
    /// VDX's best cost reduction vs. Brokered-at-default, at a point whose
    /// distance does not exceed Brokered's (fraction, e.g. 0.44 = −44 %).
    pub vdx_cost_cut_at_equal_distance: f64,
    /// VDX's best distance reduction at a point whose cost does not exceed
    /// Brokered's.
    pub vdx_distance_cut_at_equal_cost: f64,
}

const DESIGNS: [Design; 7] = [
    Design::Brokered,
    Design::Multicluster(2),
    Design::Multicluster(100),
    Design::DynamicPricing,
    Design::DynamicMulticluster,
    Design::BestLookup,
    Design::Marketplace,
];

/// Runs the sweep. All 70 (design, wc) rounds are independent, so the
/// whole grid fans out through the [`engine`](crate::engine) at once;
/// curves are reassembled from the order-preserving outcome vector.
pub fn run(scenario: &Scenario) -> Fig17Result {
    let specs: Vec<RoundSpec> = DESIGNS
        .iter()
        .enumerate()
        .flat_map(|(d, &design)| {
            WC_SWEEP.iter().enumerate().map(move |(i, &wc)| {
                RoundSpec::new(
                    (d * WC_SWEEP.len() + i) as u64,
                    design,
                    CpPolicy { wp: 1.0, wc },
                )
            })
        })
        .collect();
    let outcomes = run_rounds(scenario, &specs);
    let mut curves = Vec::new();
    for (d, design) in DESIGNS.iter().enumerate() {
        let points: Vec<(f64, f64)> = outcomes[d * WC_SWEEP.len()..(d + 1) * WC_SWEEP.len()]
            .iter()
            .map(|outcome| {
                let m = compute(&MetricsInput { scenario, outcome });
                (m.cost, m.distance_miles)
            })
            .collect();
        curves.push(TradeoffCurve {
            design: design.name(),
            points,
        });
    }

    // Reference: Brokered at the balanced default (wc = 30 is index 5).
    let brokered_ref = curves[0].points[5];
    let vdx = &curves[DESIGNS.len() - 1];
    let cost_cut = vdx
        .points
        .iter()
        .filter(|(_, d)| *d <= brokered_ref.1 + 1e-9)
        .map(|(c, _)| 1.0 - c / brokered_ref.0)
        .fold(0.0f64, f64::max);
    let distance_cut = vdx
        .points
        .iter()
        .filter(|(c, _)| *c <= brokered_ref.0 + 1e-9)
        .map(|(_, d)| 1.0 - d / brokered_ref.1)
        .fold(0.0f64, f64::max);
    Fig17Result {
        curves,
        vdx_cost_cut_at_equal_distance: cost_cut,
        vdx_distance_cut_at_equal_cost: distance_cut,
    }
}

/// Renders the result.
pub fn render(result: &Fig17Result) -> String {
    let mut rows = Vec::new();
    for curve in &result.curves {
        for (i, (cost, dist)) in curve.points.iter().enumerate() {
            rows.push(vec![
                curve.design.clone(),
                format!("{}", WC_SWEEP[i]),
                format!("{cost:.3}"),
                format!("{dist:.0}"),
            ]);
        }
    }
    let mut out = render_table(
        "Fig 17: cost vs. distance as the cost weight wc sweeps",
        &["design", "wc", "median cost", "median distance (mi)"],
        &rows,
    );
    out.push_str(&format!(
        "VDX vs Brokered(default): cost -{:.0}% at equal distance (paper ~44%), \
         distance -{:.0}% at equal cost (paper ~74%)\n",
        100.0 * result.vdx_cost_cut_at_equal_distance,
        100.0 * result.vdx_distance_cut_at_equal_cost
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_wc_moves_along_the_tradeoff() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        let vdx = r
            .curves
            .iter()
            .find(|c| c.design == "Marketplace")
            .expect("curve");
        // Larger wc => cheaper (monotone within tolerance of heuristic noise).
        let first_cost = vdx.points.first().expect("points").0;
        let last_cost = vdx.points.last().expect("points").0;
        assert!(
            last_cost <= first_cost + 1e-9,
            "{last_cost} vs {first_cost}"
        );
        // ... and farther (performance sacrificed).
        let first_dist = vdx.points.first().expect("points").1;
        let last_dist = vdx.points.last().expect("points").1;
        assert!(
            last_dist >= first_dist - 1e-9,
            "{last_dist} vs {first_dist}"
        );
    }

    #[test]
    fn fig17_vdx_improves_on_brokered() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        assert!(
            r.vdx_cost_cut_at_equal_distance > 0.0,
            "VDX should cut cost at equal distance, got {}",
            r.vdx_cost_cut_at_equal_distance
        );
        // In the paper VDX also *shortens* paths (-74%) because its
        // Brokered baseline served the median client ~300 mi away; our
        // synthetic metros are dense enough that Brokered already serves
        // locally, so VDX can only match distance while undercutting cost.
        // Weak domination is the invariant we can honestly pin.
        assert!(
            r.vdx_distance_cut_at_equal_cost >= 0.0,
            "VDX must not be farther at equal cost, got {}",
            r.vdx_distance_cut_at_equal_cost
        );
        assert!(render(&r).contains("VDX vs Brokered"));
    }
}
