//! Fig 18: "Adjusting bid counts vs cost and score" — how many candidate
//! clusters each CDN submits per client location.
//!
//! Paper shape: "the largest increase in performance (drop in score) is
//! just achieved by adding the second bid"; beyond that, diminishing
//! returns on score while average cost keeps drifting up (bids are sorted
//! cheapest-first, so extra bids only add pricier-but-faster options).

use crate::engine::{run_rounds, RoundSpec};
use crate::metrics::{compute, MetricsInput};
use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::CpPolicy;
use vdx_core::Design;

/// The bid counts swept (log-spaced like the paper's x-axis).
pub const BID_COUNTS: [usize; 8] = [1, 2, 4, 10, 32, 100, 316, 1000];

/// Fig 18 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig18Result {
    /// `(bid count, average cost, average score)` per sweep point.
    pub points: Vec<(usize, f64, f64)>,
}

/// Runs the sweep over the Marketplace design; the eight bid-count rounds
/// are independent and fan out through the [`engine`](crate::engine).
pub fn run(scenario: &Scenario) -> Fig18Result {
    let specs: Vec<RoundSpec> = BID_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &bids)| {
            RoundSpec::new(i as u64, Design::Marketplace, CpPolicy::balanced()).with_bid_count(bids)
        })
        .collect();
    let outcomes = run_rounds(scenario, &specs);
    let points = BID_COUNTS
        .iter()
        .zip(&outcomes)
        .map(|(&bids, outcome)| {
            let m = compute(&MetricsInput { scenario, outcome });
            (bids, m.mean_cost, m.mean_score)
        })
        .collect();
    Fig18Result { points }
}

/// Renders the result.
pub fn render(result: &Fig18Result) -> String {
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|(b, c, s)| vec![b.to_string(), format!("{c:.4}"), format!("{s:.1}")])
        .collect();
    let mut out = render_table(
        "Fig 18: marketplace bid count vs average cost and score",
        &["bids", "avg cost", "avg score"],
        &rows,
    );
    let first = result.points.first().expect("points");
    let second = result.points.get(1).expect("points");
    let last = result.points.last().expect("points");
    out.push_str(&format!(
        "score drop from 2nd bid: {:.1}; from all further bids: {:.1} \
         (paper: the 2nd bid gives the largest drop)\n",
        first.2 - second.2,
        second.2 - last.2
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_more_bids_better_score() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        assert_eq!(r.points.len(), BID_COUNTS.len());
        let first = r.points[0];
        let last = *r.points.last().expect("points");
        assert!(
            last.2 <= first.2 + 1e-9,
            "score should improve with bids: {} -> {}",
            first.2,
            last.2
        );
    }

    #[test]
    fn fig18_second_bid_gives_large_share_of_gain() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        let s1 = r.points[0].2;
        let s2 = r.points[1].2;
        let s_last = r.points.last().expect("points").2;
        let total_gain = s1 - s_last;
        if total_gain > 1e-9 {
            let second_bid_gain = s1 - s2;
            assert!(
                second_bid_gain >= 0.3 * total_gain,
                "2nd bid gain {second_bid_gain:.2} of total {total_gain:.2}"
            );
        }
        assert!(render(&r).contains("2nd bid"));
    }
}
