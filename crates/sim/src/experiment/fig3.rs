//! Fig 3: "Average cost per byte serving clients geolocated in various
//! countries relative to the average" — top-20 countries by traffic.
//!
//! Paper shape: bars from well under 100 % to ~400 %, an overall disparity
//! of up to ~30× between the cheapest and most expensive country.

use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_trace::cost::{cost_disparity, top_country_costs, CountryCostRow};

/// Fig 3 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One row per country, descending by traffic.
    pub rows: Vec<CountryCostRow>,
    /// Max/min cost ratio across the rows.
    pub disparity: f64,
}

/// Runs the experiment.
pub fn run(scenario: &Scenario) -> Fig3Result {
    let rows = top_country_costs(&scenario.world, &scenario.trace, 20);
    let disparity = cost_disparity(&rows).unwrap_or(0.0);
    Fig3Result { rows, disparity }
}

/// Renders the result.
pub fn render(result: &Fig3Result) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.code.clone(),
                r.requests.to_string(),
                format!("{:.0}%", r.cost_vs_avg_pct),
            ]
        })
        .collect();
    let mut out = render_table(
        "Fig 3: per-country cost vs. average (top-20 by traffic)",
        &["country", "requests", "cost vs avg"],
        &rows,
    );
    out.push_str(&format!(
        "max/min disparity: {:.1}x (paper: up to ~30x)\n",
        result.disparity
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_cost_disparity() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        assert!(!r.rows.is_empty());
        assert!(r.rows.len() <= 20);
        assert!(r.disparity > 3.0, "disparity {}", r.disparity);
        let txt = render(&r);
        assert!(txt.contains("Fig 3"));
        assert!(txt.contains("disparity"));
    }
}
