//! Fig 4: "Sessions moved between CDNs by the broker in our trace in 5s
//! intervals" — the short-term traffic-unpredictability evidence.
//!
//! Paper shape: the percentage of active sessions that were moved
//! mid-stream averages ~40 %, dipping to ~20 % and rising above ~60 %.

use crate::report::render_series;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};

/// Fig 4 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// `(interval start s, % of active sessions moved)` per 5 s bin.
    pub series: Vec<(f64, f64)>,
    /// Mean over non-empty bins.
    pub mean_pct: f64,
    /// Minimum bin value.
    pub min_pct: f64,
    /// Maximum bin value.
    pub max_pct: f64,
}

/// Runs the experiment.
pub fn run(scenario: &Scenario) -> Fig4Result {
    let series = scenario.trace.moved_sessions_series(5.0);
    let non_empty: Vec<f64> = series
        .iter()
        .map(|(_, p)| *p)
        .filter(|p| *p > 0.0 || true)
        .collect();
    let mean = non_empty.iter().sum::<f64>() / non_empty.len().max(1) as f64;
    let min = non_empty.iter().copied().fold(f64::INFINITY, f64::min);
    let max = non_empty.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Fig4Result {
        series,
        mean_pct: mean,
        min_pct: min,
        max_pct: max,
    }
}

/// Renders the result (subsampled series plus summary line).
pub fn render(result: &Fig4Result) -> String {
    let sampled: Vec<(f64, f64)> = result.series.iter().step_by(24).copied().collect();
    let mut out = render_series(
        "Fig 4: % active sessions moved mid-stream (5s bins, every 2 min shown)",
        "t (s)",
        "% moved",
        &sampled,
    );
    out.push_str(&format!(
        "mean {:.1}%  min {:.1}%  max {:.1}%  (paper: mean ~40%, range ~20-60%)\n",
        result.mean_pct, result.min_pct, result.max_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        // The full-size trace pins the statistics tightly; the small test
        // trace is noisier, so bands are generous.
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        assert_eq!(r.series.len(), 720);
        assert!((20.0..60.0).contains(&r.mean_pct), "mean {}", r.mean_pct);
        assert!(r.max_pct > r.min_pct + 10.0, "visible variation");
        assert!(render(&r).contains("mean"));
    }
}
