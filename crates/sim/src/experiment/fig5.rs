//! Fig 5: "Broker's usage of CDNs, sorted by requests per city in the US.
//! Dotted lines are best-fit linear regressions."
//!
//! Paper shape: CDN A (distributed) is strongly favoured in smaller cities
//! (negative best-fit slope against requests-per-city); CDN B and C
//! (centralized) are size-insensitive (near-zero slopes).
//!
//! "US" proxy: the synthetic world has no United States, so the experiment
//! uses the highest-demand North-American country, which plays the same
//! role (one large country with many cities of very different sizes).

use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_geo::Region;
use vdx_netsim::LinearFit;
use vdx_trace::CdnLabel;

/// Fig 5 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// `(requests_per_city, usage_pct)` points per CDN label A/B/C.
    pub points: [Vec<(f64, f64)>; 3],
    /// Best-fit lines per CDN label A/B/C (None if degenerate).
    pub fits: [Option<LinearFit>; 3],
    /// Country code used as the US proxy.
    pub country_code: String,
}

/// Runs the experiment.
pub fn run(scenario: &Scenario) -> Fig5Result {
    // The US proxy: the North-American country with the most requests.
    let usage_by_country = scenario.trace.usage_by_country(&scenario.world);
    let us = usage_by_country
        .iter()
        .filter(|(c, _, _)| scenario.world.country(*c).region == Region::NorthAmerica)
        .max_by_key(|(_, req, _)| *req)
        .map(|(c, _, _)| *c)
        .expect("world has a North-American country");

    let mut points: [Vec<(f64, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (city, requests, shares) in scenario.trace.usage_by_city() {
        if scenario.world.city(city).country != us {
            continue;
        }
        for (i, label) in [CdnLabel::A, CdnLabel::B, CdnLabel::C].iter().enumerate() {
            points[i].push((requests as f64, 100.0 * shares[label.index()]));
        }
    }
    let fits = [
        LinearFit::fit(&points[0]),
        LinearFit::fit(&points[1]),
        LinearFit::fit(&points[2]),
    ];
    Fig5Result {
        points,
        fits,
        country_code: scenario.world.country(us).code.clone(),
    }
}

/// Renders the result.
pub fn render(result: &Fig5Result) -> String {
    let rows: Vec<Vec<String>> = ["CDN A", "CDN B", "CDN C"]
        .iter()
        .zip(&result.fits)
        .map(|(name, fit)| match fit {
            Some(f) => vec![
                name.to_string(),
                format!("{:.4}", f.slope),
                format!("{:.1}", f.intercept),
                format!("{:.2}", f.r2),
                f.n.to_string(),
            ],
            None => vec![
                name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "0".into(),
            ],
        })
        .collect();
    let mut out = render_table(
        &format!(
            "Fig 5: CDN usage vs. requests-per-city (country {}, US proxy) — best-fit lines",
            result.country_code
        ),
        &["CDN", "slope (%/req)", "intercept %", "R2", "cities"],
        &rows,
    );
    out.push_str("paper shape: A slopes down (favoured in small cities); B and C are flat\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_slopes_match_paper_shape() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        let a = r.fits[0].expect("A fit exists");
        // A is favoured in small cities: usage falls as city size grows.
        assert!(a.slope < 0.0, "A slope {}", a.slope);
        // B and C are much flatter than A.
        for i in [1usize, 2] {
            if let Some(f) = r.fits[i] {
                assert!(
                    f.slope.abs() < a.slope.abs(),
                    "centralized CDN slope {} vs A {}",
                    f.slope,
                    a.slope
                );
            }
        }
        assert!(render(&r).contains("best-fit"));
    }
}
