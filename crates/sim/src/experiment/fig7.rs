//! Fig 7: "Broker's usage of CDNs for a sampling of countries based on
//! request count" — all countries with ≥ 100 requests.
//!
//! Paper shape: utilization varies wildly per country — "CDN B barely
//! serves 7, yet almost entirely serves 8; CDN A is rarely used in 8, 11,
//! and 15".

use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_trace::CdnLabel;

/// One country's usage shares.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryUsage {
    /// Anonymised country code.
    pub code: String,
    /// Requests from the country.
    pub requests: u64,
    /// Usage share (0–1) for A, B, C, other.
    pub shares: [f64; 4],
}

/// Fig 7 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Per-country usage, countries with ≥ 100 requests, by request count.
    pub countries: Vec<CountryUsage>,
    /// Spread (max − min) of CDN B's share across the countries.
    pub b_share_spread: f64,
}

/// Runs the experiment.
pub fn run(scenario: &Scenario) -> Fig7Result {
    let mut countries: Vec<CountryUsage> = scenario
        .trace
        .usage_by_country(&scenario.world)
        .into_iter()
        .filter(|(_, req, _)| *req >= 100)
        .map(|(c, req, shares)| CountryUsage {
            code: scenario.world.country(c).code.clone(),
            requests: req,
            shares,
        })
        .collect();
    countries.sort_by(|a, b| b.requests.cmp(&a.requests));
    let b_shares: Vec<f64> = countries
        .iter()
        .map(|c| c.shares[CdnLabel::B.index()])
        .collect();
    let spread = b_shares.iter().copied().fold(f64::MIN, f64::max)
        - b_shares.iter().copied().fold(f64::MAX, f64::min);
    Fig7Result {
        countries,
        b_share_spread: spread,
    }
}

/// Renders the result.
pub fn render(result: &Fig7Result) -> String {
    let rows: Vec<Vec<String>> = result
        .countries
        .iter()
        .map(|c| {
            vec![
                c.code.clone(),
                c.requests.to_string(),
                format!("{:.0}%", 100.0 * c.shares[0]),
                format!("{:.0}%", 100.0 * c.shares[1]),
                format!("{:.0}%", 100.0 * c.shares[2]),
                format!("{:.0}%", 100.0 * c.shares[3]),
            ]
        })
        .collect();
    let mut out = render_table(
        "Fig 7: per-country CDN usage (countries with >=100 requests)",
        &["country", "requests", "CDN A", "CDN B", "CDN C", "other"],
        &rows,
    );
    out.push_str(&format!(
        "CDN B share spread across countries: {:.0}pp (paper: near-0% to near-100%)\n",
        100.0 * result.b_share_spread
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_usage_varies_strongly_per_country() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        assert!(r.countries.len() >= 3, "{} countries", r.countries.len());
        // Small test traces have few >=100-request countries; the
        // full-scale run shows near-0% to near-100%.
        assert!(r.b_share_spread > 0.15, "spread {}", r.b_share_spread);
        for c in &r.countries {
            let total: f64 = c.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "shares sum to 1");
        }
        assert!(render(&r).contains("Fig 7"));
    }
}
