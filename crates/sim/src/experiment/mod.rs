//! One module per table/figure of the paper's evaluation.
//!
//! Each module exposes a `run(&Scenario) -> …Result` function returning
//! serializable data and a `render(&…Result) -> String` producing the
//! plain-text table/series the `repro` binary prints. The mapping from
//! paper artefact to module:
//!
//! | Paper | Module |
//! |---|---|
//! | Fig 3 (per-country cost vs. average) | [`fig3`] |
//! | Fig 4 (sessions moved mid-stream) | [`fig4`] |
//! | Fig 5 (CDN usage vs. city size) | [`fig5`] |
//! | Table 1 (alternative clusters) | [`table1`] |
//! | Fig 7 (CDN usage per country) | [`fig7`] |
//! | Table 3 (design comparison) | [`table3`] |
//! | Figs 10–15 (ratios/traffic/profit per CDN & country) | [`fig10_15`] |
//! | Fig 16 (200 city-centric CDNs) | [`fig16`] |
//! | Fig 17 (cost/performance trade-off) | [`fig17`] |
//! | Fig 18 (bid count sweep) | [`fig18`] |
//! | §6.3 predictability dynamics (extension) | [`ext_stability`] |
//! | §8 hybrid pricing (extension) | [`ext_hybrid`] |
//! | measurement-noise sensitivity (extension) | [`ext_noise`] |
//! | fault campaigns / graceful degradation (extension) | [`ext_faults`] |

pub mod ext_faults;
pub mod ext_hybrid;
pub mod ext_noise;
pub mod ext_stability;
pub mod fig10_15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod table1;
pub mod table3;
