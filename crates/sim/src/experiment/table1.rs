//! Table 1: "How often alternative CDN clusters with similar performance
//! scores exist" — within 25 % of the best score.
//!
//! Paper values: ≥1 alternative 77.8 %, ≥2 64.5 %, ≥3 53.7 %, ≥4 43.8 %
//! ("on average there are four server clusters (i.e., 3 alternative
//! choices) that have similar scores").
//!
//! The mapping data comes from one major, highly distributed CDN (§3.1) —
//! our fleet's CDN 1. Client cities are weighted by request count, like
//! scores in the real mapping data are weighted by client-block traffic.

use crate::report::render_table;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_cdn::CdnId;
use vdx_netsim::{alternatives_within, Score, SIMILARITY_MARGIN};

/// Table 1 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// `pct[k]` = percentage of clients with ≥ k+1 alternative clusters.
    pub pct_with_alternatives: [f64; 4],
    /// Mean number of alternatives per client.
    pub mean_alternatives: f64,
}

/// Runs the experiment.
pub fn run(scenario: &Scenario) -> Table1Result {
    let cdn = CdnId(0); // the highly distributed CDN — the paper's data source
    let sites: Vec<_> = scenario.fleet.clusters_of(cdn).map(|cl| cl.city).collect();
    let mut weighted: [f64; 4] = [0.0; 4];
    let mut total_weight = 0.0;
    let mut alt_sum = 0.0;
    for (city, requests) in scenario.trace.requests_per_city() {
        let scores: Vec<Score> = sites
            .iter()
            .map(|&site| scenario.score_of(city, site))
            .collect();
        let alts = alternatives_within(&scores, SIMILARITY_MARGIN);
        let w = requests as f64;
        for (k, slot) in weighted.iter_mut().enumerate() {
            if alts >= k + 1 {
                *slot += w;
            }
        }
        alt_sum += alts as f64 * w;
        total_weight += w;
    }
    let pct = weighted.map(|w| 100.0 * w / total_weight.max(1e-9));
    Table1Result {
        pct_with_alternatives: pct,
        mean_alternatives: alt_sum / total_weight,
    }
}

/// Renders the result.
pub fn render(result: &Table1Result) -> String {
    let paper = [77.8, 64.5, 53.7, 43.8];
    let rows: Vec<Vec<String>> = (0..4)
        .map(|k| {
            vec![
                format!("{} alternative(s)", k + 1),
                format!("{:.1}%", result.pct_with_alternatives[k]),
                format!("{:.1}%", paper[k]),
            ]
        })
        .collect();
    let mut out = render_table(
        "Table 1: clients with alternative clusters within 25% of best",
        &["alternatives", "measured", "paper"],
        &rows,
    );
    out.push_str(&format!(
        "mean alternatives per client: {:.1} (paper: ~3)\n",
        result.mean_alternatives
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_alternatives_are_common_and_monotone() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        // Monotone by construction.
        for k in 1..4 {
            assert!(r.pct_with_alternatives[k] <= r.pct_with_alternatives[k - 1]);
        }
        // The paper's core claim: alternatives exist for a majority of
        // clients, and several alternatives are common.
        assert!(
            r.pct_with_alternatives[0] > 50.0,
            ">=1 alternative for most clients, got {:.1}%",
            r.pct_with_alternatives[0]
        );
        assert!(r.mean_alternatives > 1.0, "mean {}", r.mean_alternatives);
        assert!(render(&r).contains("Table 1"));
    }
}
