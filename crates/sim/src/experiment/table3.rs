//! Table 3: the design-space comparison — Cost, Score, Distance, Load and
//! Congested for all eight designs over one data-driven decision round.
//!
//! Paper values (medians; lower is better):
//!
//! | design | Cost | Score | Distance | Load | Congested |
//! |---|---|---|---|---|---|
//! | Brokered | 136 | 132 | 297 | 9% | 0% |
//! | Multicluster (2) | 155 | 87 | 194 | 14% | 27% |
//! | Multicluster (100) | 171 | 85 | 141 | 20% | 39% |
//! | DynamicPricing | 126 | 148 | 318 | 11% | 0% |
//! | DynamicMulticluster | 115 | 122 | 219 | 40% | 14% |
//! | BestLookup | 94 | 108 | 166 | 14% | 14% |
//! | Marketplace | 93 | 112 | 178 | 23% | 0% |
//! | Omniscient | 86 | 111 | 172 | 48% | 0% |
//!
//! Absolute units differ (the authors' cost unit is theirs); the
//! reproduction target is the ordering and the zero/non-zero congestion
//! pattern.

use crate::engine::{run_rounds, run_series, RoundSpec};
use crate::metrics::{compute, DesignMetrics, MetricsInput};
use crate::report::{fmt, render_table};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_broker::CpPolicy;
use vdx_core::Design;

/// Table 3 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// `(design name, metrics)` in the paper's row order.
    pub rows: Vec<(String, DesignMetrics)>,
}

/// Runs all eight designs (one independent round each, fanned out by the
/// [`engine`](crate::engine); row order is the paper's regardless of
/// schedule).
pub fn run(scenario: &Scenario) -> Table3Result {
    let specs: Vec<RoundSpec> = Design::TABLE3
        .iter()
        .enumerate()
        .map(|(i, &design)| RoundSpec::new(i as u64, design, CpPolicy::balanced()))
        .collect();
    let outcomes = run_rounds(scenario, &specs);
    let rows = Design::TABLE3
        .iter()
        .zip(&outcomes)
        .map(|(&design, outcome)| {
            let metrics = compute(&MetricsInput { scenario, outcome });
            (design.name(), metrics)
        })
        .collect();
    Table3Result { rows }
}

/// [`run`] over `rounds` consecutive decision rounds per design — the
/// round hot loop the warm-start layer targets.
///
/// Each design is one series sharing one warm-start context: round ids
/// `i·rounds ..< (i+1)·rounds` for design `i`, journaled in that order.
/// The scenario is static across a series, so rounds after the first are
/// warm-eligible and (with `reuse` on) short-circuit their Optimize step.
/// The reported metrics come from each design's *last* round, which is
/// bit-identical to its first — so the rendered Table 3 matches
/// [`run`]'s regardless of `rounds` or `reuse` (`reuse = false` is the
/// `--solver-cold` reference path and must also journal identically).
pub fn run_multi(scenario: &Scenario, rounds: u64, reuse: bool) -> Table3Result {
    let series: Vec<RoundSpec> = Design::TABLE3
        .iter()
        .enumerate()
        .map(|(i, &design)| RoundSpec::new(i as u64 * rounds, design, CpPolicy::balanced()))
        .collect();
    let outcomes = run_series(scenario, &series, rounds, reuse);
    let rows = Design::TABLE3
        .iter()
        .zip(&outcomes)
        .map(|(&design, outcome)| {
            let metrics = compute(&MetricsInput { scenario, outcome });
            (design.name(), metrics)
        })
        .collect();
    Table3Result { rows }
}

/// Renders the result.
pub fn render(result: &Table3Result) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|(name, m)| {
            vec![
                name.clone(),
                fmt(m.cost),
                fmt(m.score),
                fmt(m.distance_miles),
                format!("{:.0}%", m.load_pct),
                format!("{:.0}%", m.congested_pct),
            ]
        })
        .collect();
    render_table(
        "Table 3: design comparison (medians; lower is better)",
        &["design", "Cost", "Score", "Distance", "Load", "Congested"],
        &rows,
    )
}

/// Convenience accessor by design name; `None` when the table has no
/// row under that name.
pub fn metrics_of<'a>(result: &'a Table3Result, name: &str) -> Option<&'a DesignMetrics> {
    result.rows.iter().find(|(n, _)| n == name).map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_orderings() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = run(&s);
        assert_eq!(r.rows.len(), 8);
        let brokered = metrics_of(&r, "Brokered").expect("row exists");
        let multicluster100 = metrics_of(&r, "Multicluster (100)").expect("row exists");
        let marketplace = metrics_of(&r, "Marketplace").expect("row exists");
        let omniscient = metrics_of(&r, "Omniscient").expect("row exists");

        // Multicluster buys performance (score/distance) over Brokered.
        assert!(multicluster100.score <= brokered.score);
        assert!(multicluster100.distance_miles <= brokered.distance_miles);
        // Marketplace is cheaper than Brokered.
        assert!(marketplace.cost < brokered.cost);
        // Marketplace never congests; blind Multicluster can.
        assert_eq!(marketplace.congested_pct, 0.0);
        assert!(multicluster100.congested_pct >= marketplace.congested_pct);
        // Omniscient is the cost lower bound across the table.
        for (name, m) in &r.rows {
            assert!(
                omniscient.cost <= m.cost + 1e-9,
                "Omniscient ({}) undercut by {name} ({})",
                omniscient.cost,
                m.cost
            );
        }
        assert!(render(&r).contains("Marketplace"));
    }

    #[test]
    fn multi_round_table3_renders_identically_to_single_round() {
        let s: &Scenario = crate::scenario::shared_small();
        let single = render(&run(s));
        let warm = render(&run_multi(s, 3, true));
        let cold = render(&run_multi(s, 3, false));
        assert_eq!(single, warm, "warm multi-round table matches single");
        assert_eq!(warm, cold, "warm and cold strategies render identically");
    }
}
