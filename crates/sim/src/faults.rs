//! Fault-injection campaigns with graceful degradation (DESIGN.md §9).
//!
//! Every other experiment runs the Decision Protocol as a pure in-process
//! function — messages cannot be lost. A fault campaign instead routes the
//! rounds a [`FaultPlan`] marks as faulty through `vdx-proto`'s lossy
//! [`Link`]s and Go-Back-N channels, with the broker walking a bounded
//! degradation ladder when Announces miss the round deadline:
//!
//! 1. **retry** — the reliable channel retransmits with exponential
//!    backoff, bounded by a retry budget;
//! 2. **stale reuse** — a missing CDN's last-seen bids are substituted
//!    from a [`StaleBidCache`] while they are within the TTL (never for a
//!    CDN the plan declares failed);
//! 3. **exclude** — past the TTL the CDN simply sits the round out;
//! 4. **fall back** — if any client group ends up with no option at all,
//!    or the exchange itself is down, the round is re-run as Brokered:
//!    flat contracts are pre-negotiated, so Brokered needs no exchange
//!    traffic at all.
//!
//! Rounds whose [`RoundFaults`] entry is clean — and *all* rounds of
//! designs that never consult the exchange ([`Design::uses_exchange`] is
//! false) — take the exact pure fast path of [`Scenario::run_round_probed`],
//! so a campaign under an all-clean plan is event-for-event and
//! bit-for-bit identical to the ordinary experiment engine.
//!
//! Determinism: link fault seeds are mixed from the plan seed, the round
//! id and the CDN index only; no wall clock, no shared counters. The same
//! `(scenario, plan)` always yields the same journal bytes.

use crate::metrics::{compute, DesignMetrics, MetricsInput};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdx_broker::{BrokerProblem, CpPolicy, OptimizeMode, StaleBidCache};
use vdx_cdn::{median_capacity, BidPolicy, CdnId, MatchingConfig};
use vdx_core::{
    CdnAgent, DeadlineOutcome, Design, ExchangeBroker, ExchangeConfig, LiveRoundResult, RoundId,
    RoundOutcome,
};
use vdx_geo::CityId;
use vdx_obs::{Event, Probe};
use vdx_proto::endpoint::Endpoint;
use vdx_proto::reliable::{ReliableChannel, ReliableConfig};
use vdx_proto::{Bid, FaultConfig, Link, LinkEnd, SimTime};

/// The faults injected into one campaign round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundFaults {
    /// Per-packet drop probability on every broker↔CDN link.
    pub drop_chance: f64,
    /// Per-packet corruption probability (caught by the frame CRC and
    /// discarded at the receiver, costing a retransmission).
    pub corrupt_chance: f64,
    /// Propagation delay added to every packet, ms.
    pub delay_ms: u64,
    /// Uniform extra delay jitter, ms.
    pub jitter_ms: u64,
    /// The exchange itself is down this round: no live round is even
    /// attempted; every exchange-dependent design falls back to Brokered.
    pub exchange_outage: bool,
    /// CDNs whose whole cluster is down this round: their links black
    /// out, their agents do not run, and their cached bids are unusable.
    pub failed_cdns: Vec<u32>,
}

impl RoundFaults {
    /// A round with no faults at all.
    pub fn none() -> RoundFaults {
        RoundFaults {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            delay_ms: 0,
            jitter_ms: 0,
            exchange_outage: false,
            failed_cdns: Vec::new(),
        }
    }

    /// Whether this round injects nothing — clean rounds take the pure
    /// in-process fast path and are byte-identical to a plain round.
    pub fn is_clean(&self) -> bool {
        self.drop_chance == 0.0
            && self.corrupt_chance == 0.0
            && self.delay_ms == 0
            && self.jitter_ms == 0
            && !self.exchange_outage
            && self.failed_cdns.is_empty()
    }
}

impl Default for RoundFaults {
    fn default() -> Self {
        RoundFaults::none()
    }
}

/// A full campaign: per-round faults plus the degradation-policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    /// One entry per campaign round, in order.
    pub rounds: Vec<RoundFaults>,
    /// Seed for the injected link faults (mixed with round and CDN ids).
    pub seed: u64,
    /// How many rounds old cached bids may be and still substitute for a
    /// missing Announce (degradation level 2).
    pub stale_ttl_rounds: u64,
    /// The broker's per-round deadline, ms: at this point whatever has
    /// not arrived is substituted, excluded, or falls back.
    pub deadline_ms: u64,
}

impl FaultPlan {
    /// A plan of `rounds` clean rounds — a campaign under it reproduces
    /// the pure experiment numbers exactly.
    pub fn clean(rounds: usize) -> FaultPlan {
        FaultPlan {
            rounds: vec![RoundFaults::none(); rounds],
            seed: 0,
            stale_ttl_rounds: 2,
            deadline_ms: 3_000,
        }
    }

    /// Whether every round of the plan is clean.
    pub fn is_clean(&self) -> bool {
        self.rounds.iter().all(RoundFaults::is_clean)
    }
}

/// How a campaign round was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundAvailability {
    /// Completed on fresh information (possibly after retransmissions).
    Live,
    /// Completed, but on stale substitutions and/or with CDNs excluded.
    Degraded,
    /// The design gave up and the round ran as Brokered.
    Fallback,
}

/// One resolved campaign round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignRound {
    /// How the round was resolved.
    pub availability: RoundAvailability,
    /// Ground-truth quality of whatever assignment was made.
    pub metrics: DesignMetrics,
}

/// A finished campaign for one design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// The design the campaign ran.
    pub design: Design,
    /// Per-round resolutions, in plan order.
    pub rounds: Vec<CampaignRound>,
}

impl CampaignOutcome {
    fn count(&self, availability: RoundAvailability) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.availability == availability)
            .count()
    }

    /// Rounds completed on fresh information.
    pub fn live_rounds(&self) -> usize {
        self.count(RoundAvailability::Live)
    }

    /// Rounds completed degraded (stale reuse or exclusions).
    pub fn degraded_rounds(&self) -> usize {
        self.count(RoundAvailability::Degraded)
    }

    /// Rounds that fell back to Brokered.
    pub fn fallback_rounds(&self) -> usize {
        self.count(RoundAvailability::Fallback)
    }

    /// Arithmetic mean of every metric over the campaign's rounds.
    pub fn mean_metrics(&self) -> DesignMetrics {
        let n = self.rounds.len().max(1) as f64;
        let sum = |f: fn(&DesignMetrics) -> f64| -> f64 {
            self.rounds.iter().map(|r| f(&r.metrics)).sum::<f64>() / n
        };
        DesignMetrics {
            cost: sum(|m| m.cost),
            score: sum(|m| m.score),
            distance_miles: sum(|m| m.distance_miles),
            load_pct: sum(|m| m.load_pct),
            congested_pct: sum(|m| m.congested_pct),
            mean_cost: sum(|m| m.mean_cost),
            mean_score: sum(|m| m.mean_score),
        }
    }
}

/// Reconstructs each CDN's announced bid list from an assembled problem —
/// the inverse of the exchange's cdn-major option assembly, preserving
/// every CDN's original bid order. Used to (re)fill the stale-bid cache
/// from both live and pure rounds.
fn bids_by_cdn(problem: &BrokerProblem, cdns: usize) -> Vec<Vec<Bid>> {
    let mut per_cdn = vec![Vec::new(); cdns];
    for (g, opts) in problem.options.iter().enumerate() {
        for o in opts {
            if let Some(bids) = per_cdn.get_mut(o.cdn.index()) {
                bids.push(Bid {
                    cluster_id: o.cluster.0 as u64,
                    share_id: g as u64,
                    performance_estimate: o.score.value(),
                    capacity_kbps: o.believed_capacity_kbps.as_f64(),
                    price_per_mb: o.price_per_mb.as_per_megabit(),
                });
            }
        }
    }
    per_cdn
}

/// The matching rule a design's CDN agents apply (identical to the pure
/// decision round's).
fn matching_for(design: Design) -> MatchingConfig {
    if design == Design::Omniscient {
        MatchingConfig::unrestricted()
    } else {
        MatchingConfig::default().with_max_candidates(design.max_candidates())
    }
}

/// Deterministic per-(round, CDN) link fault seed.
fn link_seed(plan: &FaultPlan, round: u64, cdn: usize) -> u64 {
    plan.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (cdn as u64).wrapping_mul(0xC2B2_AE35)
}

/// Runs one fault campaign: `plan.rounds.len()` sequential Decision
/// Protocol rounds for `design`, journaled under round ids `base_round`,
/// `base_round + 1`, … The stale-bid cache carries across the campaign's
/// rounds (and only within it), so campaigns are independent of each
/// other and safe to fan out.
pub fn run_campaign(
    scenario: &Scenario,
    design: Design,
    policy: CpPolicy,
    plan: &FaultPlan,
    base_round: u64,
    probe: Arc<dyn Probe>,
) -> CampaignOutcome {
    let n = scenario.fleet.cdns.len();
    let mut cache: StaleBidCache<Vec<Bid>> = StaleBidCache::new(n, plan.stale_ttl_rounds);
    let mut rounds = Vec::with_capacity(plan.rounds.len());

    for (i, faults) in plan.rounds.iter().enumerate() {
        let round_id = base_round + i as u64;
        let campaign_idx = i as u64;

        // Clean rounds — and every round of a design that decides from
        // pre-negotiated contract data alone — take the pure fast path:
        // no wire, no fault events, bit-identical to a plain round.
        if faults.is_clean() || !design.uses_exchange() {
            let outcome =
                scenario.run_round_probed(RoundId(round_id), design, policy, None, probe.as_ref());
            if design.uses_exchange() {
                for (cdn, bids) in bids_by_cdn(&outcome.problem, n).into_iter().enumerate() {
                    cache.store(cdn, campaign_idx, bids);
                }
            }
            let metrics = compute(&MetricsInput {
                scenario,
                outcome: &outcome,
            });
            rounds.push(CampaignRound {
                availability: RoundAvailability::Live,
                metrics,
            });
            continue;
        }

        if probe.enabled() {
            probe.emit(Event::FaultPlanApplied {
                round: round_id,
                drop_chance: faults.drop_chance,
                corrupt_chance: faults.corrupt_chance,
                delay_ms: faults.delay_ms,
                jitter_ms: faults.jitter_ms,
                exchange_outage: faults.exchange_outage,
                failed_cdns: faults.failed_cdns.len() as u64,
                deadline_ms: plan.deadline_ms,
            });
            for &cdn in &faults.failed_cdns {
                probe.emit(Event::CdnOutage {
                    round: round_id,
                    cdn,
                });
            }
        }

        if faults.exchange_outage {
            // The exchange is down: no live round is attempted at all.
            if probe.enabled() {
                probe.emit(Event::ExchangeOutage { round: round_id });
                probe.emit(Event::DesignFallback {
                    round: round_id,
                    from: design.name(),
                    to: Design::Brokered.name(),
                    reason: "exchange outage".into(),
                });
            }
            rounds.push(brokered_fallback(scenario, policy, round_id, &probe));
            continue;
        }

        // Live round over faulty links.
        let failed: Vec<usize> = faults.failed_cdns.iter().map(|&c| c as usize).collect();
        let matching = matching_for(design);
        let channel_config = ReliableConfig {
            backoff: 1.5,
            max_retries: Some(16),
            ..ReliableConfig::default()
        };
        let mut links = Vec::with_capacity(n);
        let mut broker_eps = Vec::with_capacity(n);
        let mut agents = Vec::with_capacity(n);
        for cdn in 0..n {
            let config = if failed.contains(&cdn) {
                // A failed CDN's link blacks out entirely.
                FaultConfig {
                    drop_chance: 1.0,
                    corrupt_chance: 0.0,
                    delay_ms: 0,
                    jitter_ms: 0,
                    rate_limit_bytes_per_ms: None,
                }
            } else {
                FaultConfig {
                    drop_chance: faults.drop_chance,
                    corrupt_chance: faults.corrupt_chance,
                    delay_ms: faults.delay_ms,
                    jitter_ms: faults.jitter_ms,
                    rate_limit_bytes_per_ms: None,
                }
            };
            links.push(Link::new(config, link_seed(plan, round_id, cdn)));
            broker_eps.push(Endpoint::new(ReliableChannel::new(
                LinkEnd::A,
                channel_config.clone(),
            )));
            agents.push(
                CdnAgent::new(
                    CdnId(cdn as u32),
                    Endpoint::new(ReliableChannel::new(LinkEnd::B, channel_config.clone())),
                    BidPolicy::default(),
                    matching.clone(),
                    scenario.fleet.clusters.len(),
                    scenario.background_load.clone(),
                )
                .with_design(
                    design,
                    scenario.contracts[cdn].billed_price_per_mb(),
                    median_capacity(&scenario.fleet, CdnId(cdn as u32)),
                ),
            );
        }
        let mut broker = ExchangeBroker::new(
            broker_eps,
            ExchangeConfig {
                design,
                policy,
                mode: OptimizeMode::Heuristic,
                matching,
            },
        );
        broker.set_probe(probe.clone());
        broker.set_next_round_id(round_id);
        broker.start_round(scenario.groups.clone());

        let mut early: Option<LiveRoundResult> = None;
        for ms in 0..plan.deadline_ms {
            let now = SimTime(ms);
            for (cdn, agent) in agents.iter_mut().enumerate() {
                if failed.contains(&cdn) {
                    continue; // a failed CDN's agent is down too
                }
                agent.poll(
                    now,
                    &mut links[cdn],
                    &scenario.fleet,
                    &|a: CityId, b: CityId| scenario.score_of(a, b),
                );
            }
            if let Some(result) = broker.poll(now, &mut links) {
                early = Some(result);
                break;
            }
        }

        let (resolved, fresh_cdns) = match early {
            Some(result) => {
                // Every Announce arrived in time: all CDNs are fresh.
                ((Some(result), RoundAvailability::Live), (0..n).collect())
            }
            None => {
                let outcome = broker.finalize_at_deadline(
                    SimTime(plan.deadline_ms),
                    &mut links,
                    &cache,
                    campaign_idx,
                    &failed,
                );
                match outcome {
                    DeadlineOutcome::Completed(result, report) => {
                        let availability = if report.is_clean() {
                            RoundAvailability::Live
                        } else {
                            RoundAvailability::Degraded
                        };
                        let fresh: Vec<usize> = report.fresh.iter().map(|c| c.index()).collect();
                        ((Some(result), availability), fresh)
                    }
                    DeadlineOutcome::Fallback(_) => {
                        // finalize_at_deadline already journaled the
                        // DesignFallback event.
                        ((None, RoundAvailability::Fallback), Vec::new())
                    }
                }
            }
        };

        // Wire accounting: what the injected faults and the Go-Back-N
        // layer actually dropped on each broker↔CDN link this round.
        if probe.enabled() {
            for cdn in 0..n {
                let a = links[cdn].stats(LinkEnd::A);
                let b = links[cdn].stats(LinkEnd::B);
                let broker_ch = broker.channel_stats(cdn);
                let agent_ch = agents[cdn].channel_stats();
                probe.emit(Event::WireDrops {
                    round: round_id,
                    cdn: cdn as u32,
                    link_dropped: a.dropped + b.dropped,
                    corrupt_discarded: broker_ch.discarded + agent_ch.discarded,
                    out_of_order: broker_ch.out_of_order + agent_ch.out_of_order,
                });
            }
        }

        match resolved {
            (Some(result), availability) => {
                // Only *fresh* bids refresh the cache: a stale
                // substitution must never be re-stored as if just seen.
                for (cdn, bids) in bids_by_cdn(&result.problem, n).into_iter().enumerate() {
                    if fresh_cdns.contains(&cdn) {
                        cache.store(cdn, campaign_idx, bids);
                    }
                }
                let outcome = RoundOutcome {
                    design,
                    problem: result.problem,
                    assignment: result.assignment,
                };
                let metrics = compute(&MetricsInput {
                    scenario,
                    outcome: &outcome,
                });
                rounds.push(CampaignRound {
                    availability,
                    metrics,
                });
            }
            (None, _) => {
                rounds.push(brokered_fallback(scenario, policy, round_id, &probe));
            }
        }
    }

    CampaignOutcome { design, rounds }
}

/// Runs the Brokered fallback round (degradation level 4) and scores it.
fn brokered_fallback(
    scenario: &Scenario,
    policy: CpPolicy,
    round_id: u64,
    probe: &Arc<dyn Probe>,
) -> CampaignRound {
    let outcome = scenario.run_round_probed(
        RoundId(round_id),
        Design::Brokered,
        policy,
        None,
        probe.as_ref(),
    );
    let metrics = compute(&MetricsInput {
        scenario,
        outcome: &outcome,
    });
    CampaignRound {
        availability: RoundAvailability::Fallback,
        metrics,
    }
}
