//! # vdx-sim — the evaluation harness
//!
//! Reproduces every table and figure of the paper's evaluation (§3, §5,
//! §7) over the synthetic ecosystem. The per-experiment index lives in
//! DESIGN.md; the measured-vs-paper record in EXPERIMENTS.md.
//!
//! * [`scenario`] — builds one coherent ecosystem (world, network model,
//!   broker trace, CDN fleet with capacities and contracts, background
//!   traffic) per §5.1 and runs Decision Protocol rounds over it.
//! * [`metrics`] — the Table 3 metric suite: median Cost / Score /
//!   Distance over clients, median cluster Load, and the Congested client
//!   percentage.
//! * [`experiment`] — one module per table/figure: `fig3`, `fig4`, `fig5`,
//!   `fig7`, `table1`, `table3`, `fig10_15`, `fig16`, `fig17`, `fig18`.
//! * [`engine`] — deterministic fan-out of independent decision rounds
//!   across threads (`parallel` feature, `repro --threads N`); results
//!   and journals are byte-identical to a serial run.
//! * [`faults`] — fault-injection campaigns (DESIGN.md §9): rounds run
//!   over lossy `vdx-proto` links with a deadline, stale-bid reuse, and
//!   Brokered fallback; clean rounds take the pure fast path.
//! * [`replay`] — time-stepped trace replay: periodic Decision Protocol
//!   rounds over the live session population (the dynamics §5.1 elides).
//! * [`soak`] — the daemon soak harness: a transport-free reference
//!   driver that replays a `SoakPlan` through the same shared round
//!   logic as `vdx-exchanged`, for decision-quality parity tests.
//! * [`report`] — plain-text table/series rendering shared by the `repro`
//!   binary and the benches.
//! * [`obs_report`] — operator summary of a `vdx-obs` flight-recorder
//!   journal (`repro obs-report <journal>`).
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p vdx-sim --bin repro --release -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod faults;
pub mod metrics;
pub mod obs_report;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod soak;

pub use metrics::{DesignMetrics, MetricsInput};
pub use scenario::{Scenario, ScenarioConfig};

// The audit store's reader ceiling must move in lockstep with the
// journal schema: bumping `vdx_obs::SCHEMA_VERSION` without teaching
// `vdx-audit` the new shape would silently strand fresh journals
// outside the store. Fail the build instead.
const _: () = assert!(vdx_audit::SUPPORTED_JOURNAL_SCHEMA == vdx_obs::SCHEMA_VERSION);
