//! The Table 3 metric suite (§5.1):
//!
//! > "Cost, Score, and Distance are the median cost, score, and distance
//! > over all clients (lower is better). Load is the median cluster load
//! > over all CDN clusters that saw any traffic. Congested is the
//! > percentage of clients sent to clusters that have greater than 100%
//! > load."
//!
//! "Clients" are weighted by session count (a group of 40 sessions
//! contributes 40 clients to the medians). Load counts brokered plus
//! background traffic against *true* capacity — the designs differ in what
//! they believed, and this is where wrong beliefs show up as congestion.
//!
//! **Cost is the serving cluster's internal cost per megabit**, not the
//! billed price. That is the paper's reading: under flat-rate designs the
//! bill never changes with the chosen cluster, yet Table 3 shows
//! Multicluster costing *more* than Brokered — "additional clusters may
//! provide better performance but will not be cheaper than the first
//! cluster" — which is only true of delivery cost.

use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vdx_core::RoundOutcome;

/// Measured metrics for one design's round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignMetrics {
    /// Median internal delivery cost per megabit over clients.
    pub cost: f64,
    /// Median performance score over clients (lower is better).
    pub score: f64,
    /// Median client→cluster distance in miles.
    pub distance_miles: f64,
    /// Median cluster load (percent of capacity) over clusters that saw
    /// brokered traffic.
    pub load_pct: f64,
    /// Percent of clients on clusters above 100 % load.
    pub congested_pct: f64,
    /// Mean internal delivery cost per megabit over clients (Fig 18).
    pub mean_cost: f64,
    /// Mean score over clients (used by Fig 18).
    pub mean_score: f64,
}

/// Bundle of references needed to compute metrics.
pub struct MetricsInput<'a> {
    /// The scenario the round ran over.
    pub scenario: &'a Scenario,
    /// The finished round.
    pub outcome: &'a RoundOutcome,
}

/// Computes the full metric suite for one round.
pub fn compute(input: &MetricsInput<'_>) -> DesignMetrics {
    let s = input.scenario;
    let out = input.outcome;

    // Per-client samples, weighted by group session counts.
    let mut cost_samples: Vec<(f64, u64)> = Vec::new();
    let mut score_samples: Vec<(f64, u64)> = Vec::new();
    let mut distance_samples: Vec<(f64, u64)> = Vec::new();
    let mut congested_clients = 0u64;
    let mut total_clients = 0u64;

    for (g, &choice) in out.assignment.choice.iter().enumerate() {
        let group = &out.problem.groups[g];
        let option = &out.problem.options[g][choice];
        let cluster = &s.fleet.clusters[option.cluster.index()];
        let weight = group.sessions as u64;

        cost_samples.push((cluster.cost_per_mb().as_per_megabit(), weight));
        score_samples.push((option.score.value(), weight));
        distance_samples.push((s.world.distance_miles(group.city, cluster.city), weight));

        let load = out.assignment.cluster_load_kbps[&option.cluster]
            + s.background_load[option.cluster.index()];
        total_clients += weight;
        if load > cluster.capacity_kbps {
            congested_clients += weight;
        }
    }

    // Cluster loads (brokered + background) for clusters with brokered
    // traffic.
    let mut load_pcts: Vec<(f64, u64)> = Vec::new();
    for (cluster, brokered) in &out.assignment.cluster_load_kbps {
        if *brokered <= vdx_units::Kbps::ZERO {
            continue;
        }
        let cl = &s.fleet.clusters[cluster.index()];
        let load = *brokered + s.background_load[cluster.index()];
        load_pcts.push((
            100.0 * load.as_f64() / cl.capacity_kbps.as_f64().max(1e-9),
            1,
        ));
    }

    DesignMetrics {
        cost: weighted_median(&mut cost_samples),
        score: weighted_median(&mut score_samples),
        distance_miles: weighted_median(&mut distance_samples),
        load_pct: weighted_median(&mut load_pcts),
        congested_pct: 100.0 * congested_clients as f64 / total_clients.max(1) as f64,
        mean_cost: weighted_mean(&cost_samples),
        mean_score: weighted_mean(&score_samples),
    }
}

/// Weighted median: the value at half the total weight. Empty input → 0.
pub fn weighted_median(samples: &mut [(f64, u64)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let total: u64 = samples.iter().map(|(_, w)| *w).sum();
    let mut acc = 0u64;
    for (v, w) in samples.iter() {
        acc += w;
        if acc * 2 >= total {
            return *v;
        }
    }
    samples.last().expect("non-empty").0
}

fn weighted_mean(samples: &[(f64, u64)]) -> f64 {
    let total: u64 = samples.iter().map(|(_, w)| *w).sum();
    if total == 0 {
        return 0.0;
    }
    samples.iter().map(|(v, w)| v * *w as f64).sum::<f64>() / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdx_broker::CpPolicy;
    use vdx_core::Design;

    #[test]
    fn weighted_median_basics() {
        assert_eq!(weighted_median(&mut []), 0.0);
        assert_eq!(weighted_median(&mut [(5.0, 1)]), 5.0);
        assert_eq!(weighted_median(&mut [(1.0, 1), (2.0, 1), (3.0, 1)]), 2.0);
        // Weight dominance: the heavy value is the median.
        assert_eq!(weighted_median(&mut [(1.0, 100), (50.0, 1)]), 1.0);
    }

    #[test]
    fn metrics_are_finite_and_sane_for_all_designs() {
        let s = crate::scenario::shared_small();
        for design in Design::TABLE3 {
            let out = s.run(design, CpPolicy::balanced());
            let m = compute(&MetricsInput {
                scenario: &s,
                outcome: &out,
            });
            assert!(
                m.cost.is_finite() && m.cost > 0.0,
                "{design}: cost {}",
                m.cost
            );
            assert!(m.score > 0.0, "{design}");
            assert!(m.distance_miles >= 0.0, "{design}");
            assert!((0.0..=100.0).contains(&m.congested_pct), "{design}");
            assert!(m.load_pct >= 0.0, "{design}");
        }
    }

    #[test]
    fn multicluster_improves_score_over_brokered() {
        // Table 3's first qualitative relationship.
        let s = crate::scenario::shared_small();
        let brokered = s.run(Design::Brokered, CpPolicy::balanced());
        let multi = s.run(Design::Multicluster(100), CpPolicy::balanced());
        let mb = compute(&MetricsInput {
            scenario: &s,
            outcome: &brokered,
        });
        let mm = compute(&MetricsInput {
            scenario: &s,
            outcome: &multi,
        });
        assert!(
            mm.score <= mb.score,
            "multicluster score {} should not exceed brokered {}",
            mm.score,
            mb.score
        );
    }

    #[test]
    fn marketplace_cuts_cost_versus_brokered() {
        // Table 3's headline: Marketplace 93 vs Brokered 136.
        let s = crate::scenario::shared_small();
        let brokered = s.run(Design::Brokered, CpPolicy::balanced());
        let market = s.run(Design::Marketplace, CpPolicy::balanced());
        let mb = compute(&MetricsInput {
            scenario: &s,
            outcome: &brokered,
        });
        let mm = compute(&MetricsInput {
            scenario: &s,
            outcome: &market,
        });
        assert!(
            mm.cost < mb.cost,
            "marketplace cost {} should beat brokered {}",
            mm.cost,
            mb.cost
        );
    }

    #[test]
    fn marketplace_has_no_congestion() {
        // Table 3: Marketplace's Congested column is 0%.
        let s = crate::scenario::shared_small();
        let market = s.run(Design::Marketplace, CpPolicy::balanced());
        let mm = compute(&MetricsInput {
            scenario: &s,
            outcome: &market,
        });
        assert_eq!(mm.congested_pct, 0.0);
    }
}
