//! Post-hoc analysis of a flight-recorder journal: `repro obs-report`.
//!
//! Takes the events of one journal (see `vdx-obs`) and renders the
//! plain-text summary an operator reads first after a run: what ran, how
//! long each phase took, how hard the solver worked, what the wire did,
//! and where congestion or churn showed up. Rendering reuses
//! [`crate::report`] so the output is diffable like every other table.

use crate::report::{fmt, render_table};
use std::collections::BTreeMap;
use vdx_obs::Event;

/// Renders the operator summary for one journal's events.
pub fn report(events: &[Event]) -> String {
    let mut out = String::new();

    // Run identity. Journals newer than the reader never get this far:
    // `read_journal` rejects them with `JournalError::Version`, so the
    // supported-version note here documents the ceiling rather than
    // guarding it.
    for e in events {
        if let Event::RunHeader {
            schema,
            experiment,
            seed,
            scale,
            threads,
            git_commit,
            ..
        } = e
        {
            out.push_str(&format!(
                "journal: experiment={experiment} seed={seed} scale={scale} \
                 schema=v{schema} (reader supports <= v{})\n",
                vdx_obs::SCHEMA_VERSION
            ));
            let threads = if *threads == 0 {
                "ambient".to_string()
            } else {
                threads.to_string()
            };
            let commit = if git_commit.is_empty() {
                "unknown"
            } else {
                git_commit.as_str()
            };
            out.push_str(&format!("build: commit={commit} threads={threads}\n"));
        }
    }
    if let Some(Event::ExperimentFinished {
        wall_ms, events: n, ..
    }) = events.last()
    {
        out.push_str(&format!(
            "run complete: {n} events, {wall_ms} ms wall time\n"
        ));
    } else {
        out.push_str("run INCOMPLETE: journal has no terminal experiment_finished event\n");
    }
    out.push('\n');

    // Event census, sorted by kind for stable output.
    let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in events {
        *census.entry(e.kind()).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = census
        .iter()
        .map(|(k, n)| vec![(*k).to_string(), n.to_string()])
        .collect();
    out.push_str(&render_table("Event census", &["event", "count"], &rows));
    out.push('\n');

    // Per-phase wall time, in journal (i.e. execution) order.
    let phase_rows: Vec<Vec<String>> = events
        .iter()
        .filter_map(|e| match e {
            Event::PhaseFinished { phase, wall_us } => {
                Some(vec![phase.clone(), fmt(*wall_us as f64 / 1_000.0)])
            }
            _ => None,
        })
        .collect();
    if !phase_rows.is_empty() {
        out.push_str(&render_table("Phases", &["phase", "wall ms"], &phase_rows));
        out.push('\n');
    }

    // Decision rounds and solver effort.
    let mut rounds = 0u64;
    let mut options = 0u64;
    let mut pivots = 0u64;
    let mut bnb_nodes = 0u64;
    let mut worst_gap: Option<f64> = None;
    let mut modes: BTreeMap<String, u64> = BTreeMap::new();
    let mut resolves = 0u64;
    let mut warm_eligible = 0u64;
    let mut changed_clients = 0u64;
    for e in events {
        match e {
            Event::RoundCompleted { options: o, .. } => {
                rounds += 1;
                options += o;
            }
            Event::SolverResolve {
                warm_eligible: w,
                changed_clients: c,
                ..
            } => {
                resolves += 1;
                warm_eligible += u64::from(*w);
                changed_clients += c;
            }
            Event::SolverStats {
                mode,
                pivots: p,
                bnb_nodes: n,
                optimality_gap,
                ..
            } => {
                pivots += p;
                bnb_nodes += n;
                *modes.entry(mode.clone()).or_insert(0) += 1;
                if let Some(g) = optimality_gap {
                    worst_gap = Some(worst_gap.map_or(*g, |w: f64| w.max(*g)));
                }
            }
            _ => {}
        }
    }
    if rounds > 0 || pivots > 0 {
        let mode_list = modes
            .iter()
            .map(|(m, n)| format!("{m} x{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut solver_rows = vec![
            vec!["rounds completed".to_string(), rounds.to_string()],
            vec!["options considered".to_string(), options.to_string()],
            vec!["simplex pivots".to_string(), pivots.to_string()],
            vec!["B&B nodes".to_string(), bnb_nodes.to_string()],
            vec![
                "worst optimality gap".to_string(),
                worst_gap.map_or_else(|| "n/a".to_string(), fmt),
            ],
            vec![
                "solve modes".to_string(),
                if mode_list.is_empty() {
                    "n/a".into()
                } else {
                    mode_list
                },
            ],
        ];
        // Warm-start delta lines (schema v4 journals; a pure function of
        // the round sequence, so warm and cold runs report identically).
        if resolves > 0 {
            solver_rows.push(vec![
                "re-solves (warm-eligible)".to_string(),
                format!("{resolves} ({warm_eligible})"),
            ]);
            solver_rows.push(vec![
                "changed clients total".to_string(),
                changed_clients.to_string(),
            ]);
        }
        out.push_str(&render_table(
            "Decision rounds",
            &["metric", "value"],
            &solver_rows,
        ));
        out.push('\n');
    }

    // Wire health: retransmissions, fragmentation, captured packets, and
    // the three distinct drop causes (injected link loss, CRC-discarded
    // corruption, Go-Back-N out-of-order discards — see `Event::WireDrops`).
    let mut retransmit_events = 0u64;
    let mut retransmit_frames = 0u64;
    let mut fragmented_payloads = 0u64;
    let mut fragmented_bytes = 0u64;
    let mut wire_packets = 0u64;
    let mut wire_bytes = 0u64;
    let mut link_dropped = 0u64;
    let mut corrupt_discarded = 0u64;
    let mut out_of_order = 0u64;
    for e in events {
        match e {
            Event::FrameRetransmitted { frames, .. } => {
                retransmit_events += 1;
                retransmit_frames += frames;
            }
            Event::PayloadFragmented { bytes, .. } => {
                fragmented_payloads += 1;
                fragmented_bytes += bytes;
            }
            Event::WirePacket { bytes, .. } => {
                wire_packets += 1;
                wire_bytes += bytes;
            }
            Event::WireDrops {
                link_dropped: l,
                corrupt_discarded: c,
                out_of_order: o,
                ..
            } => {
                link_dropped += l;
                corrupt_discarded += c;
                out_of_order += o;
            }
            _ => {}
        }
    }
    let drops_total = link_dropped + corrupt_discarded + out_of_order;
    if retransmit_events + fragmented_payloads + wire_packets + drops_total > 0 {
        let mut wire_rows = vec![
            vec![
                "retransmit timeouts".to_string(),
                retransmit_events.to_string(),
            ],
            vec![
                "frames retransmitted".to_string(),
                retransmit_frames.to_string(),
            ],
            vec![
                "payloads fragmented".to_string(),
                fragmented_payloads.to_string(),
            ],
            vec!["fragmented bytes".to_string(), fragmented_bytes.to_string()],
            vec!["captured packets".to_string(), wire_packets.to_string()],
            vec!["captured bytes".to_string(), wire_bytes.to_string()],
        ];
        if drops_total > 0 {
            wire_rows.push(vec![
                "link fault drops".to_string(),
                link_dropped.to_string(),
            ]);
            wire_rows.push(vec![
                "crc-discarded frames".to_string(),
                corrupt_discarded.to_string(),
            ]);
            wire_rows.push(vec![
                "out-of-order discards".to_string(),
                out_of_order.to_string(),
            ]);
        }
        out.push_str(&render_table("Wire", &["metric", "value"], &wire_rows));
        out.push('\n');
    }

    // Fault campaigns: injected faults and the degradation ladder's moves.
    let mut fault_rounds = 0u64;
    let mut cdn_outages = 0u64;
    let mut exchange_outages = 0u64;
    let mut deadlines_missed = 0u64;
    let mut stale_reuses = 0u64;
    let mut fallbacks = 0u64;
    for e in events {
        match e {
            Event::FaultPlanApplied { .. } => fault_rounds += 1,
            Event::CdnOutage { .. } => cdn_outages += 1,
            Event::ExchangeOutage { .. } => exchange_outages += 1,
            Event::DeadlineMissed { .. } => deadlines_missed += 1,
            Event::StaleBidsReused { .. } => stale_reuses += 1,
            Event::DesignFallback { .. } => fallbacks += 1,
            _ => {}
        }
    }
    if fault_rounds + cdn_outages + exchange_outages + deadlines_missed + stale_reuses + fallbacks
        > 0
    {
        let fault_rows = vec![
            vec!["faulted rounds".to_string(), fault_rounds.to_string()],
            vec!["cdn outages".to_string(), cdn_outages.to_string()],
            vec!["exchange outages".to_string(), exchange_outages.to_string()],
            vec!["deadlines missed".to_string(), deadlines_missed.to_string()],
            vec!["stale-bid reuses".to_string(), stale_reuses.to_string()],
            vec!["design fallbacks".to_string(), fallbacks.to_string()],
        ];
        out.push_str(&render_table("Faults", &["metric", "value"], &fault_rows));
        out.push('\n');
    }

    // Daemon connection lifecycle and CDN health (schema v5; only
    // `vdx-exchanged` journals carry these). One row per CDN that ever
    // appeared in a conn_* or health_* event. "last state" is the
    // breaker state after the journal's final transition for that CDN —
    // CDNs with connections but no transitions have been healthy
    // (closed) throughout.
    #[derive(Default)]
    struct CdnHealth {
        accepted: u64,
        closed: u64,
        last_close_reason: Option<String>,
        backpressure: u64,
        transitions: u64,
        last_state: Option<String>,
        probes_ok: u64,
        probes_failed: u64,
    }
    let mut health: BTreeMap<u32, CdnHealth> = BTreeMap::new();
    for e in events {
        match e {
            Event::ConnAccepted { cdn, .. } => health.entry(*cdn).or_default().accepted += 1,
            Event::ConnClosed { cdn, reason, .. } => {
                let h = health.entry(*cdn).or_default();
                h.closed += 1;
                h.last_close_reason = Some(reason.clone());
            }
            Event::ConnBackpressure { cdn, .. } => {
                health.entry(*cdn).or_default().backpressure += 1
            }
            Event::HealthTransition { cdn, to, .. } => {
                let h = health.entry(*cdn).or_default();
                h.transitions += 1;
                h.last_state = Some(to.clone());
            }
            Event::HealthProbe { cdn, success, .. } => {
                let h = health.entry(*cdn).or_default();
                if *success {
                    h.probes_ok += 1;
                } else {
                    h.probes_failed += 1;
                }
            }
            _ => {}
        }
    }
    if !health.is_empty() {
        let rows: Vec<Vec<String>> = health
            .iter()
            .map(|(cdn, h)| {
                vec![
                    format!("CDN {cdn}"),
                    h.accepted.to_string(),
                    match &h.last_close_reason {
                        Some(reason) => format!("{} ({reason})", h.closed),
                        None => h.closed.to_string(),
                    },
                    h.backpressure.to_string(),
                    h.transitions.to_string(),
                    h.last_state.clone().unwrap_or_else(|| "closed".into()),
                    format!("{}/{}", h.probes_ok, h.probes_ok + h.probes_failed),
                ]
            })
            .collect();
        out.push_str(&render_table(
            "Daemon connections & health",
            &[
                "cdn",
                "conns",
                "closes",
                "backpressure",
                "transitions",
                "last state",
                "probes ok",
            ],
            &rows,
        ));
        out.push('\n');
    }

    // Congestion and replay churn.
    let congested = events
        .iter()
        .filter(|e| matches!(e, Event::ClusterCongested { .. }))
        .count();
    let (mut moved, mut continuing) = (0u64, 0u64);
    for e in events {
        if let Event::SessionMoved {
            moved: m,
            continuing: c,
            ..
        } = e
        {
            moved += m;
            continuing += c;
        }
    }
    if congested > 0 || continuing > 0 {
        let mut rows = vec![vec![
            "congested cluster-rounds".to_string(),
            congested.to_string(),
        ]];
        if continuing > 0 {
            rows.push(vec![
                "sessions moved mid-stream".to_string(),
                moved.to_string(),
            ]);
            rows.push(vec![
                "moved fraction".to_string(),
                fmt(moved as f64 / continuing as f64),
            ]);
        }
        out.push_str(&render_table("Load & churn", &["metric", "value"], &rows));
        out.push('\n');
    }

    // Timing histograms and counters drained from the metrics registry.
    let timing_rows: Vec<Vec<String>> = events
        .iter()
        .filter_map(|e| match e {
            Event::TimingSummary {
                name,
                count,
                mean_us,
                p50_us,
                p95_us,
                p99_us,
            } => Some(vec![
                name.clone(),
                count.to_string(),
                fmt(*mean_us),
                fmt(*p50_us),
                fmt(*p95_us),
                fmt(*p99_us),
            ]),
            _ => None,
        })
        .collect();
    if !timing_rows.is_empty() {
        out.push_str(&render_table(
            "Timings (µs)",
            &["name", "count", "mean", "p50", "p95", "p99"],
            &timing_rows,
        ));
        out.push('\n');
    }
    let counter_rows: Vec<Vec<String>> = events
        .iter()
        .filter_map(|e| match e {
            Event::CounterSnapshot { name, value } => Some(vec![name.clone(), value.to_string()]),
            _ => None,
        })
        .collect();
    if !counter_rows.is_empty() {
        out.push_str(&render_table("Counters", &["name", "value"], &counter_rows));
        out.push('\n');
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Vec<Event> {
        vec![
            Event::RunHeader {
                schema: vdx_obs::SCHEMA_VERSION,
                experiment: "table3".into(),
                seed: 2017,
                scale: "small".into(),
                started_unix_ms: 0,
                threads: 4,
                git_commit: "abc123def456".into(),
            },
            Event::PhaseStarted {
                phase: "build_scenario".into(),
            },
            Event::PhaseFinished {
                phase: "build_scenario".into(),
                wall_us: 2_500_000,
            },
            Event::RoundStarted {
                round: 0,
                design: "Marketplace".into(),
                groups: 10,
                cdns: 3,
            },
            Event::SolverResolve {
                round: 0,
                changed_clients: 10,
                changed_buckets: 3,
                warm_eligible: false,
            },
            Event::SolverStats {
                round: 0,
                mode: "heuristic".into(),
                pivots: 0,
                bnb_nodes: 0,
                optimality_gap: None,
                objective: 5.0,
            },
            Event::RoundCompleted {
                round: 0,
                objective: 5.0,
                options: 30,
            },
            Event::FrameRetransmitted {
                at_ms: 230,
                frames: 5,
            },
            Event::FaultPlanApplied {
                round: 0,
                drop_chance: 0.15,
                corrupt_chance: 0.05,
                delay_ms: 20,
                jitter_ms: 10,
                exchange_outage: false,
                failed_cdns: 1,
                deadline_ms: 3_000,
            },
            Event::CdnOutage { round: 0, cdn: 2 },
            Event::DeadlineMissed {
                round: 0,
                missing_cdns: 2,
                deadline_ms: 3_000,
            },
            Event::StaleBidsReused {
                round: 0,
                cdn: 1,
                age_rounds: 1,
                bids: 44,
            },
            Event::DesignFallback {
                round: 0,
                from: "Marketplace".into(),
                to: "Brokered".into(),
                reason: "insufficient bids at deadline".into(),
            },
            Event::WireDrops {
                round: 0,
                cdn: 1,
                link_dropped: 31,
                corrupt_discarded: 4,
                out_of_order: 12,
            },
            Event::PayloadFragmented {
                fragments: 7,
                bytes: 200_000,
            },
            Event::ConnAccepted {
                at_ms: 5,
                cdn: 1,
                peer: "127.0.0.1:50000".into(),
            },
            Event::ConnBackpressure {
                at_ms: 40,
                cdn: 1,
                queued: 64,
            },
            Event::HealthTransition {
                round: 0,
                cdn: 1,
                from: "closed".into(),
                to: "open".into(),
                reason: "trip threshold reached".into(),
            },
            Event::HealthProbe {
                round: 2,
                cdn: 1,
                success: true,
            },
            Event::HealthTransition {
                round: 2,
                cdn: 1,
                from: "half_open".into(),
                to: "closed".into(),
                reason: "probe succeeded".into(),
            },
            Event::ConnClosed {
                at_ms: 90,
                cdn: 1,
                reason: "shutdown".into(),
            },
            Event::SessionMoved {
                bin: 1,
                moved: 2,
                continuing: 8,
            },
            Event::ClusterCongested {
                round: 0,
                cluster: 4,
                load_kbps: 2.0,
                capacity_kbps: 1.0,
            },
            Event::TimingSummary {
                name: "round".into(),
                count: 1,
                mean_us: 100.0,
                p50_us: 100.0,
                p95_us: 100.0,
                p99_us: 100.0,
            },
            Event::CounterSnapshot {
                name: "rounds".into(),
                value: 1,
            },
            Event::ExperimentFinished {
                experiment: "table3".into(),
                wall_ms: 3_000,
                events: 12,
            },
        ]
    }

    #[test]
    fn report_covers_every_section() {
        let text = report(&fixture());
        assert!(
            text.contains("experiment=table3 seed=2017 scale=small"),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "schema=v{v} (reader supports <= v{v})",
                v = vdx_obs::SCHEMA_VERSION
            )),
            "{text}"
        );
        assert!(
            text.contains("build: commit=abc123def456 threads=4"),
            "{text}"
        );
        assert!(text.contains("run complete: 12 events"), "{text}");
        assert!(text.contains("== Event census =="), "{text}");
        assert!(text.contains("round_completed"), "{text}");
        assert!(text.contains("== Phases =="), "{text}");
        assert!(text.contains("build_scenario"), "{text}");
        assert!(text.contains("== Decision rounds =="), "{text}");
        assert!(text.contains("heuristic x1"), "{text}");
        assert!(text.contains("re-solves (warm-eligible)"), "{text}");
        assert!(text.contains("1 (0)"), "{text}");
        assert!(text.contains("changed clients total"), "{text}");
        assert!(text.contains("== Wire =="), "{text}");
        assert!(text.contains("frames retransmitted"), "{text}");
        assert!(text.contains("link fault drops"), "{text}");
        assert!(text.contains("crc-discarded frames"), "{text}");
        assert!(text.contains("out-of-order discards"), "{text}");
        assert!(text.contains("== Faults =="), "{text}");
        assert!(text.contains("stale-bid reuses"), "{text}");
        assert!(text.contains("design fallbacks"), "{text}");
        assert!(text.contains("== Daemon connections & health =="), "{text}");
        assert!(
            text.contains("1 (shutdown)"),
            "close count with reason: {text}"
        );
        assert!(text.contains("closed"), "last state after recovery: {text}");
        assert!(text.contains("1/1"), "probe tally: {text}");
        assert!(text.contains("== Load & churn =="), "{text}");
        assert!(text.contains("0.2500"), "moved fraction 2/8: {text}");
        assert!(text.contains("== Timings"), "{text}");
        assert!(text.contains("== Counters =="), "{text}");
    }

    #[test]
    fn truncated_journal_is_flagged() {
        let mut events = fixture();
        events.pop();
        let text = report(&events);
        assert!(text.contains("run INCOMPLETE"), "{text}");
    }

    #[test]
    fn empty_sections_are_omitted() {
        let events = vec![
            Event::RunHeader {
                schema: 1,
                experiment: "x".into(),
                seed: 1,
                scale: "small".into(),
                started_unix_ms: 0,
                threads: 0,
                git_commit: String::new(),
            },
            Event::ExperimentFinished {
                experiment: "x".into(),
                wall_ms: 1,
                events: 1,
            },
        ];
        let text = report(&events);
        assert!(!text.contains("== Wire =="), "{text}");
        assert!(!text.contains("== Faults =="), "{text}");
        assert!(
            !text.contains("== Daemon connections & health =="),
            "{text}"
        );
        assert!(!text.contains("== Timings"), "{text}");
        assert!(!text.contains("== Phases =="), "{text}");
    }
}
