//! Time-stepped trace replay: the dynamics the paper's snapshot elides.
//!
//! §5.1 argues "time dynamics are less important as the Decision Protocol
//! runs periodically (e.g., every few minutes) over all clients" and
//! evaluates a single round. This module runs the *periodic* part: the
//! trace is split into bins, each bin re-runs the Decision Protocol over
//! the sessions active in it, and sessions alive across a bin boundary are
//! moved mid-stream whenever the new round assigns their (city, bitrate)
//! group to a different cluster — the broker-induced churn of the paper's
//! Fig 4, now produced by an actual decision loop instead of synthesized.

use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vdx_broker::{gather_groups, CpPolicy, OptimizeMode};
use vdx_cdn::ClusterId;
use vdx_core::{run_decision_round_probed, Design, RoundId, RoundInputs};
use vdx_geo::CityId;
use vdx_obs::Event;

/// Replay parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Decision Protocol period in seconds (paper: "every few minutes").
    pub bin_s: f64,
    /// The design to replay under.
    pub design: Design,
    /// CP policy.
    pub policy: CpPolicy,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            bin_s: 300.0,
            design: Design::Marketplace,
            policy: CpPolicy::balanced(),
        }
    }
}

/// One bin's aggregate results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinStats {
    /// Bin start time, seconds.
    pub t0: f64,
    /// Sessions active in this bin.
    pub active_sessions: u32,
    /// Of the sessions that were also active in the previous bin, the
    /// fraction whose serving *cluster* changed (decision-induced moves).
    pub moved_fraction: f64,
    /// Mean serving score over active sessions (lower is better).
    pub mean_score: f64,
}

/// Full replay results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Per-bin statistics.
    pub bins: Vec<BinStats>,
}

impl ReplayResult {
    /// Mean decision-induced move fraction over bins with continuity.
    pub fn mean_moved(&self) -> f64 {
        let moved: Vec<f64> = self.bins.iter().skip(1).map(|b| b.moved_fraction).collect();
        if moved.is_empty() {
            0.0
        } else {
            moved.iter().sum::<f64>() / moved.len() as f64
        }
    }
}

/// Replays the scenario's trace through periodic Decision Protocol rounds.
///
/// Each bin's round reports to the scenario's probe under the bin index as
/// its round id, followed by one [`Event::SessionMoved`] summarising the
/// decision-induced churn at the bin boundary.
pub fn replay(scenario: &Scenario, config: &ReplayConfig) -> ReplayResult {
    let probe = scenario.probe();
    let duration = scenario.trace.config().trace_duration_s;
    let n_bins = (duration / config.bin_s).ceil() as usize;
    let mut bins = Vec::with_capacity(n_bins);
    // Previous bin's cluster per (city, bitrate) route.
    let mut prev_route: HashMap<(CityId, u32), ClusterId> = HashMap::new();

    for bin in 0..n_bins {
        let t0 = bin as f64 * config.bin_s;
        let t1 = t0 + config.bin_s;
        let active: Vec<_> = scenario
            .trace
            .sessions()
            .iter()
            .filter(|s| s.active_in(t0, t1))
            .cloned()
            .collect();
        if active.is_empty() {
            bins.push(BinStats {
                t0,
                active_sessions: 0,
                moved_fraction: 0.0,
                mean_score: 0.0,
            });
            continue;
        }
        let groups = gather_groups(&active);
        // Background load stays the scenario's steady-state placement.
        let inputs = RoundInputs {
            world: &scenario.world,
            fleet: &scenario.fleet,
            contracts: &scenario.contracts,
            groups: &groups,
            background_load_kbps: &scenario.background_load,
            policy: config.policy,
            mode: OptimizeMode::Heuristic,
            bid_count: None,
            margins: None,
        };
        let outcome = run_decision_round_probed(
            config.design,
            &inputs,
            |a, b| scenario.score_of(a, b),
            RoundId(bin as u64),
            probe.as_ref(),
        );

        let mut route: HashMap<(CityId, u32), ClusterId> = HashMap::new();
        let mut score_sum = 0.0;
        for (g, &choice) in outcome.assignment.choice.iter().enumerate() {
            let group = &outcome.problem.groups[g];
            let option = &outcome.problem.options[g][choice];
            route.insert((group.city, group.bitrate_kbps), option.cluster);
            score_sum += option.score.value() * group.sessions as f64;
        }

        // Sessions that straddle the bin boundary move if their route
        // changed.
        let mut continuing = 0u32;
        let mut moved = 0u32;
        for s in &active {
            if s.arrival_s < t0 {
                let key = (s.city, s.bitrate_kbps);
                if let (Some(&old), Some(&new)) = (prev_route.get(&key), route.get(&key)) {
                    continuing += 1;
                    if old != new {
                        moved += 1;
                    }
                }
            }
        }
        if probe.enabled() {
            probe.emit(Event::SessionMoved {
                bin: bin as u64,
                moved: u64::from(moved),
                continuing: u64::from(continuing),
            });
        }
        let active_sessions = active.len() as u32;
        bins.push(BinStats {
            t0,
            active_sessions,
            moved_fraction: if continuing > 0 {
                moved as f64 / continuing as f64
            } else {
                0.0
            },
            mean_score: score_sum / active_sessions as f64,
        });
        prev_route = route;
    }
    ReplayResult { bins }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_produces_sane_bins() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = replay(
            s,
            &ReplayConfig {
                bin_s: 600.0,
                ..Default::default()
            },
        );
        assert_eq!(r.bins.len(), 6);
        for b in &r.bins {
            assert!(
                b.active_sessions > 0,
                "every bin of an hour-long trace has sessions"
            );
            assert!((0.0..=1.0).contains(&b.moved_fraction));
            assert!(b.mean_score > 0.0);
        }
    }

    #[test]
    fn steady_demand_means_low_decision_churn() {
        // The decision inputs vary only through which sessions are active;
        // most (city, bitrate) routes should persist bin over bin under a
        // capacity-aware design.
        let s: &Scenario = crate::scenario::shared_small();
        let r = replay(
            s,
            &ReplayConfig {
                bin_s: 600.0,
                ..Default::default()
            },
        );
        assert!(
            r.mean_moved() < 0.5,
            "mid-stream moves should not dominate: {}",
            r.mean_moved()
        );
    }

    #[test]
    fn replay_journals_one_session_moved_event_per_populated_bin() {
        use crate::scenario::ScenarioConfig;
        use std::sync::Arc;
        use vdx_obs::MemoryProbe;
        let mut s = Scenario::build(ScenarioConfig::small());
        let probe = Arc::new(MemoryProbe::new());
        s.set_probe(probe.clone());
        let r = replay(
            &s,
            &ReplayConfig {
                bin_s: 600.0,
                ..Default::default()
            },
        );
        let events = probe.take();
        let moves: Vec<(u64, u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SessionMoved {
                    bin,
                    moved,
                    continuing,
                } => Some((*bin, *moved, *continuing)),
                _ => None,
            })
            .collect();
        assert_eq!(moves.len(), r.bins.len(), "one churn event per bin");
        for (i, (bin, moved, continuing)) in moves.iter().enumerate() {
            assert_eq!(*bin, i as u64);
            assert!(moved <= continuing);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::RoundStarted { round: 2, .. })),
            "each bin's decision round is journaled under its bin index"
        );
    }

    #[test]
    fn brokered_replay_also_runs() {
        let s: &Scenario = crate::scenario::shared_small();
        let r = replay(
            s,
            &ReplayConfig {
                bin_s: 900.0,
                design: Design::Brokered,
                ..Default::default()
            },
        );
        assert_eq!(r.bins.len(), 4);
    }
}
