//! Plain-text rendering of experiment results: fixed-width tables and
//! simple series listings, shared by the `repro` binary, the examples and
//! the benches. No dependencies, no colours — output is meant to be
//! diffable and greppable.

/// Renders a fixed-width table. `headers.len()` must equal each row's
/// length.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Renders an `(x, y)` series with a caption.
pub fn render_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![format!("{x:.2}"), format!("{y:.3}")])
        .collect();
    render_table(title, &[x_label, y_label], &rows)
}

/// Formats a float compactly (3 significant-ish decimals, fixed).
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(out.contains("== T =="));
        let lines: Vec<&str> = out.lines().collect();
        // Header and rows align right on the same width.
        assert_eq!(lines[1].len(), lines[4].len());
        assert!(lines[4].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        render_table("T", &["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn series_rendering() {
        let out = render_series("S", "x", "y", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(out.contains("1.00"));
        assert!(out.contains("4.500"));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(123.456), "123");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.12345), "0.1235");
    }
}
