//! Scenario: one coherent simulated ecosystem, wired per §5.1.
//!
//! Building a scenario performs, in order:
//!
//! 1. world generation (countries, cities, costs) — `vdx-geo`;
//! 2. network model instantiation — `vdx-netsim`;
//! 3. broker trace synthesis (33.4 K sessions by default) — `vdx-trace`;
//! 4. Gather: sessions → per-city client groups, plus 3× background
//!    traffic — `vdx-broker`;
//! 5. fleet construction (14 CDNs) — `vdx-cdn`;
//! 6. capacity planning (solo-workload 2× rule over the *full* demand,
//!    brokered + background) and flat-rate contract negotiation;
//! 7. background placement onto concrete clusters.
//!
//! The resulting [`Scenario`] can then run any [`Design`]'s Decision
//! Protocol round via [`Scenario::run`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vdx_broker::{
    gather::demand_points, gather_groups, synth_background, ClientGroup, CpPolicy, OptimizeMode,
};
use vdx_cdn::{
    build_fleet, city_centric_cdns, negotiate_contract, plan_capacities, Contract, Fleet,
    FleetConfig, DEFAULT_MARKUP,
};
use vdx_core::{assign_background, run_decision_round_probed, Design, RoundInputs, RoundOutcome};
use vdx_geo::{CityId, World, WorldConfig};
use vdx_netsim::{NetModel, NetModelConfig, Score};
use vdx_obs::Probe;
use vdx_trace::{BrokerTrace, BrokerTraceConfig};

/// Scenario scale and seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// World parameters.
    pub world: WorldConfig,
    /// Network model parameters.
    pub net: NetModelConfig,
    /// Broker trace parameters.
    pub trace: BrokerTraceConfig,
    /// Fleet parameters.
    pub fleet: FleetConfig,
    /// Background traffic multiple (paper: 3×).
    pub background_multiple: f64,
    /// Master seed; every sub-generator derives from it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            world: WorldConfig::default(),
            net: NetModelConfig::default(),
            trace: BrokerTraceConfig::default(),
            fleet: FleetConfig::default(),
            background_multiple: 3.0,
            seed: 2017, // CoNEXT '17
        }
    }
}

impl ScenarioConfig {
    /// A reduced-scale configuration for fast tests and benches.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            world: WorldConfig {
                countries: 15,
                cities: 80,
                ..Default::default()
            },
            trace: BrokerTraceConfig {
                sessions: 2_000,
                videos: 300,
                ..Default::default()
            },
            fleet: FleetConfig {
                distributed_sites: 30,
                medium: (2, 8..12),
                centralized: (2, 3..5),
                regional: (2, 4..7),
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A fully built ecosystem, ready to run decision rounds.
pub struct Scenario {
    /// The configuration it was built from.
    pub config: ScenarioConfig,
    /// The world.
    pub world: World,
    /// The network model.
    pub net: NetModel,
    /// The broker trace.
    pub trace: BrokerTrace,
    /// The CDN fleet with planned capacities.
    pub fleet: Fleet,
    /// Flat-rate contracts per CDN.
    pub contracts: Vec<Contract>,
    /// The broker's client groups.
    pub groups: Vec<ClientGroup>,
    /// Per-group background demand, kbit/s.
    pub background_kbps: Vec<f64>,
    /// Per-cluster background load, kbit/s.
    pub background_load: Vec<f64>,
    /// Observability probe; the default no-op keeps rounds pure.
    probe: Arc<dyn Probe>,
    /// Monotone round counter so every journaled round has a distinct id
    /// even though [`Scenario::run`] takes `&self`.
    rounds: AtomicU64,
}

impl Scenario {
    /// Builds the ecosystem deterministically from `config`.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let world = World::generate(&config.world, config.seed);
        let net = NetModel::new(config.net.clone(), config.seed);
        let trace = BrokerTrace::generate(&world, &config.trace, config.seed);
        let groups = gather_groups(trace.sessions());
        let background_kbps = synth_background(&groups, config.background_multiple, config.seed);
        let demand = demand_points(&groups, &background_kbps);

        let mut fleet = build_fleet(&world, &config.fleet, config.seed);
        plan_capacities(&world, &mut fleet, &demand, |a, b| net.score(&world, a, b));
        let contracts = negotiate_all(&fleet);
        let background_load = assign_background(
            &world,
            &fleet,
            &groups,
            &background_kbps,
            config.seed,
            |a, b| net.score(&world, a, b),
        );
        Scenario {
            config,
            world,
            net,
            trace,
            fleet,
            contracts,
            groups,
            background_kbps,
            background_load,
            probe: vdx_obs::probe::noop(),
            rounds: AtomicU64::new(0),
        }
    }

    /// Routes every subsequent round's journal events to `probe`. The
    /// default no-op probe leaves rounds observationally pure; attaching a
    /// real probe never changes an assignment.
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.probe = probe;
    }

    /// The probe rounds currently report to (shared with, e.g., [`replay`]).
    ///
    /// [`replay`]: crate::replay
    pub fn probe(&self) -> Arc<dyn Probe> {
        self.probe.clone()
    }

    /// The §7.2 scenario: this ecosystem plus `n` city-centric CDNs, with
    /// capacities, contracts and background re-derived for the expanded
    /// fleet (the newcomers lower co-location costs at shared sites).
    pub fn with_city_centric(&self, n: usize) -> Scenario {
        let demand = demand_points(&self.groups, &self.background_kbps);
        let mut fleet = city_centric_cdns(
            &self.world,
            &self.fleet,
            &self.config.fleet,
            n,
            self.config.seed,
        );
        plan_capacities(&self.world, &mut fleet, &demand, |a, b| {
            self.net.score(&self.world, a, b)
        });
        let contracts = negotiate_all(&fleet);
        let background_load = assign_background(
            &self.world,
            &fleet,
            &self.groups,
            &self.background_kbps,
            self.config.seed,
            |a, b| self.net.score(&self.world, a, b),
        );
        Scenario {
            config: self.config.clone(),
            world: self.world.clone(),
            net: self.net.clone(),
            trace: self.trace.clone(),
            fleet,
            contracts,
            groups: self.groups.clone(),
            background_kbps: self.background_kbps.clone(),
            background_load,
            probe: self.probe.clone(),
            rounds: AtomicU64::new(0),
        }
    }

    /// The ground-truth score between a client city and a site city.
    pub fn score_of(&self, client: CityId, site: CityId) -> Score {
        self.net.score(&self.world, client, site)
    }

    /// Runs one Decision Protocol round for `design` under `policy`.
    pub fn run(&self, design: Design, policy: CpPolicy) -> RoundOutcome {
        self.run_with(design, policy, None)
    }

    /// [`Scenario::run`] with a marketplace bid-count override (Fig 18).
    pub fn run_with(
        &self,
        design: Design,
        policy: CpPolicy,
        bid_count: Option<usize>,
    ) -> RoundOutcome {
        let inputs = RoundInputs {
            world: &self.world,
            fleet: &self.fleet,
            contracts: &self.contracts,
            groups: &self.groups,
            background_load_kbps: &self.background_load,
            policy,
            mode: OptimizeMode::Heuristic,
            bid_count,
            margins: None,
        };
        let round = self.rounds.fetch_add(1, Ordering::Relaxed);
        run_decision_round_probed(
            design,
            &inputs,
            |a, b| self.score_of(a, b),
            round,
            self.probe.as_ref(),
        )
    }

    /// Total brokered demand, kbit/s.
    pub fn brokered_demand_kbps(&self) -> f64 {
        self.groups.iter().map(|g| g.demand_kbps).sum()
    }
}

fn negotiate_all(fleet: &Fleet) -> Vec<Contract> {
    fleet
        .cdns
        .iter()
        .map(|c| negotiate_contract(fleet, c.id, DEFAULT_MARKUP))
        .collect()
}

/// A lazily built, process-wide small scenario for tests — building one
/// takes seconds, and every experiment test needs the same one.
#[cfg(test)]
pub(crate) fn shared_small() -> &'static Scenario {
    static SCENARIO: std::sync::OnceLock<Scenario> = std::sync::OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::small()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds_consistently() {
        let s = shared_small();
        assert_eq!(s.fleet.cdns.len(), 7);
        assert_eq!(s.groups.len(), s.background_kbps.len());
        assert_eq!(s.background_load.len(), s.fleet.clusters.len());
        assert!(s.brokered_demand_kbps() > 0.0);
        // Capacities planned and contracts negotiated for every CDN.
        for cl in &s.fleet.clusters {
            assert!(cl.capacity_kbps > 0.0);
        }
        for c in &s.contracts {
            assert!(c.base_price_per_mb > 0.0);
        }
    }

    #[test]
    fn all_designs_run_on_small_scenario() {
        let s = shared_small();
        for design in Design::TABLE3 {
            let out = s.run(design, CpPolicy::balanced());
            assert_eq!(out.assignment.choice.len(), s.groups.len(), "{design}");
        }
    }

    #[test]
    fn city_centric_expansion_keeps_ecosystem_consistent() {
        let s = shared_small();
        let big = s.with_city_centric(20);
        assert_eq!(big.fleet.cdns.len(), s.fleet.cdns.len() + 20);
        assert_eq!(big.background_load.len(), big.fleet.clusters.len());
        let out = big.run(Design::Marketplace, CpPolicy::balanced());
        assert_eq!(out.assignment.choice.len(), big.groups.len());
    }

    #[test]
    fn probed_runs_journal_rounds_without_changing_assignments() {
        use vdx_obs::{Event, MemoryProbe};
        let mut s = Scenario::build(ScenarioConfig::small());
        let plain = s.run(Design::Marketplace, CpPolicy::balanced());
        let probe = Arc::new(MemoryProbe::new());
        s.set_probe(probe.clone());
        let probed = s.run(Design::Marketplace, CpPolicy::balanced());
        assert_eq!(plain.assignment.choice, probed.assignment.choice);
        let events = probe.take();
        let started: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::RoundStarted { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        // The unprobed run already consumed round 0.
        assert_eq!(started, vec![1]);
        s.run(Design::Brokered, CpPolicy::balanced());
        assert!(probe
            .take()
            .iter()
            .any(|e| matches!(e, Event::RoundStarted { round: 2, .. })));
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = shared_small();
        let b = Scenario::build(ScenarioConfig::small());
        let out_a = a.run(Design::Marketplace, CpPolicy::balanced());
        let out_b = b.run(Design::Marketplace, CpPolicy::balanced());
        assert_eq!(out_a.assignment.choice, out_b.assignment.choice);
    }
}
