//! Scenario: one coherent simulated ecosystem, wired per §5.1.
//!
//! Building a scenario performs, in order:
//!
//! 1. world generation (countries, cities, costs) — `vdx-geo`;
//! 2. network model instantiation — `vdx-netsim`;
//! 3. broker trace synthesis (33.4 K sessions by default) — `vdx-trace`;
//! 4. Gather: sessions → per-city client groups, plus 3× background
//!    traffic — `vdx-broker`;
//! 5. fleet construction (14 CDNs) — `vdx-cdn`;
//! 6. capacity planning (solo-workload 2× rule over the *full* demand,
//!    brokered + background) and flat-rate contract negotiation;
//! 7. background placement onto concrete clusters.
//!
//! The resulting [`Scenario`] can then run any [`Design`]'s Decision
//! Protocol round via [`Scenario::run`].

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdx_broker::{
    gather::demand_points, gather_groups, synth_background, ClientGroup, CpPolicy, OptimizeMode,
};
use vdx_cdn::{
    build_fleet, city_centric_cdns, negotiate_contract, plan_capacities, Contract, Fleet,
    FleetConfig, DEFAULT_MARKUP,
};
use vdx_core::{
    assign_background, run_decision_round_probed, Design, RoundId, RoundInputs, RoundOutcome,
};
use vdx_geo::{CityId, World, WorldConfig};
use vdx_netsim::{NetModel, NetModelConfig, Score, ScoreMatrix};
use vdx_obs::Probe;
use vdx_trace::{BrokerTrace, BrokerTraceConfig};
use vdx_units::Kbps;

/// Scenario scale and seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// World parameters.
    pub world: WorldConfig,
    /// Network model parameters.
    pub net: NetModelConfig,
    /// Broker trace parameters.
    pub trace: BrokerTraceConfig,
    /// Fleet parameters.
    pub fleet: FleetConfig,
    /// Background traffic multiple (paper: 3×).
    pub background_multiple: f64,
    /// Master seed; every sub-generator derives from it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            world: WorldConfig::default(),
            net: NetModelConfig::default(),
            trace: BrokerTraceConfig::default(),
            fleet: FleetConfig::default(),
            background_multiple: 3.0,
            seed: 2017, // CoNEXT '17
        }
    }
}

impl ScenarioConfig {
    /// A reduced-scale configuration for fast tests and benches.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            world: WorldConfig {
                countries: 15,
                cities: 80,
                ..Default::default()
            },
            trace: BrokerTraceConfig {
                sessions: 2_000,
                videos: 300,
                ..Default::default()
            },
            fleet: FleetConfig {
                distributed_sites: 30,
                medium: (2, 8..12),
                centralized: (2, 3..5),
                regional: (2, 4..7),
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A fully built ecosystem, ready to run decision rounds.
pub struct Scenario {
    /// The configuration it was built from.
    pub config: ScenarioConfig,
    /// The world.
    pub world: World,
    /// The network model.
    pub net: NetModel,
    /// The broker trace.
    pub trace: BrokerTrace,
    /// The CDN fleet with planned capacities.
    pub fleet: Fleet,
    /// Flat-rate contracts per CDN.
    pub contracts: Vec<Contract>,
    /// The broker's client groups.
    pub groups: Vec<ClientGroup>,
    /// Per-group background demand.
    pub background_kbps: Vec<Kbps>,
    /// Per-cluster background load.
    pub background_load: Vec<Kbps>,
    /// Observability probe; the default no-op keeps rounds pure.
    probe: Arc<dyn Probe>,
    /// Precomputed (client city × cluster city) scores; every score the
    /// ecosystem asks for — capacity planning, background placement,
    /// decision rounds — is an O(1) lookup here.
    scores: ScoreMatrix,
}

impl Scenario {
    /// Builds the ecosystem deterministically from `config`.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let world = World::generate(&config.world, config.seed);
        let net = NetModel::new(config.net.clone(), config.seed);
        let trace = BrokerTrace::generate(&world, &config.trace, config.seed);
        let groups = gather_groups(trace.sessions());
        let background_kbps = synth_background(&groups, config.background_multiple, config.seed);
        let demand = demand_points(&groups, &background_kbps);

        let mut fleet = build_fleet(&world, &config.fleet, config.seed);
        // Precompute every (client, cluster city) score once — capacity
        // planning alone asks for each pair per CDN, and every decision
        // round would otherwise recompute the full cross product.
        let scores = score_matrix(&net, &world, &fleet);
        plan_capacities(&world, &mut fleet, &demand, |a, b| scores.score_of(a, b));
        let contracts = negotiate_all(&fleet);
        let background_load = assign_background(
            &world,
            &fleet,
            &groups,
            &background_kbps,
            config.seed,
            |a, b| scores.score_of(a, b),
        );
        Scenario {
            config,
            world,
            net,
            trace,
            fleet,
            contracts,
            groups,
            background_kbps,
            background_load,
            probe: vdx_obs::probe::noop(),
            scores,
        }
    }

    /// Routes every subsequent round's journal events to `probe`. The
    /// default no-op probe leaves rounds observationally pure; attaching a
    /// real probe never changes an assignment.
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.probe = probe;
    }

    /// The probe rounds currently report to (shared with, e.g., [`replay`]).
    ///
    /// [`replay`]: crate::replay
    pub fn probe(&self) -> Arc<dyn Probe> {
        self.probe.clone()
    }

    /// The §7.2 scenario: this ecosystem plus `n` city-centric CDNs, with
    /// capacities, contracts and background re-derived for the expanded
    /// fleet (the newcomers lower co-location costs at shared sites).
    pub fn with_city_centric(&self, n: usize) -> Scenario {
        let demand = demand_points(&self.groups, &self.background_kbps);
        let mut fleet = city_centric_cdns(
            &self.world,
            &self.fleet,
            &self.config.fleet,
            n,
            self.config.seed,
        );
        // The expanded fleet adds cluster cities; rebuild the table.
        let scores = score_matrix(&self.net, &self.world, &fleet);
        plan_capacities(&self.world, &mut fleet, &demand, |a, b| {
            scores.score_of(a, b)
        });
        let contracts = negotiate_all(&fleet);
        let background_load = assign_background(
            &self.world,
            &fleet,
            &self.groups,
            &self.background_kbps,
            self.config.seed,
            |a, b| scores.score_of(a, b),
        );
        Scenario {
            config: self.config.clone(),
            world: self.world.clone(),
            net: self.net.clone(),
            trace: self.trace.clone(),
            fleet,
            contracts,
            groups: self.groups.clone(),
            background_kbps: self.background_kbps.clone(),
            background_load,
            probe: self.probe.clone(),
            scores,
        }
    }

    /// The ground-truth score between a client city and a site city: an
    /// O(1) matrix lookup for cluster cities (every pair the Decision
    /// Protocol asks for), falling back to the network model for pairs
    /// outside the precomputed table.
    pub fn score_of(&self, client: CityId, site: CityId) -> Score {
        self.scores
            .get(client, site)
            .unwrap_or_else(|| self.net.score(&self.world, client, site))
    }

    /// Runs one Decision Protocol round for `design` under `policy`.
    ///
    /// Convenience wrapper over [`Scenario::run_round`] with round id 0;
    /// callers journaling several rounds assign distinct ids instead.
    pub fn run(&self, design: Design, policy: CpPolicy) -> RoundOutcome {
        self.run_round(RoundId(0), design, policy)
    }

    /// [`Scenario::run`] with a marketplace bid-count override (Fig 18).
    pub fn run_with(
        &self,
        design: Design,
        policy: CpPolicy,
        bid_count: Option<usize>,
    ) -> RoundOutcome {
        self.run_round_with(RoundId(0), design, policy, bid_count)
    }

    /// Runs one Decision Protocol round under a caller-assigned round id.
    ///
    /// Rounds are pure functions of `(self, round, design, policy)`, so
    /// independent rounds may run concurrently — the id (journaled in
    /// every round event) is assigned by the experiment driver rather
    /// than a shared counter, keeping journals schedule-independent.
    pub fn run_round(&self, round: RoundId, design: Design, policy: CpPolicy) -> RoundOutcome {
        self.run_round_with(round, design, policy, None)
    }

    /// [`Scenario::run_round`] with a marketplace bid-count override.
    pub fn run_round_with(
        &self,
        round: RoundId,
        design: Design,
        policy: CpPolicy,
        bid_count: Option<usize>,
    ) -> RoundOutcome {
        self.run_round_probed(round, design, policy, bid_count, self.probe.as_ref())
    }

    /// [`Scenario::run_round_with`] reporting to an explicit probe instead
    /// of the scenario's own — the experiment engine uses this to buffer
    /// per-round events and emit them in round order.
    pub fn run_round_probed(
        &self,
        round: RoundId,
        design: Design,
        policy: CpPolicy,
        bid_count: Option<usize>,
        probe: &dyn Probe,
    ) -> RoundOutcome {
        let inputs = RoundInputs {
            world: &self.world,
            fleet: &self.fleet,
            contracts: &self.contracts,
            groups: &self.groups,
            background_load_kbps: &self.background_load,
            policy,
            mode: OptimizeMode::Heuristic,
            bid_count,
            margins: None,
        };
        run_decision_round_probed(design, &inputs, |a, b| self.score_of(a, b), round, probe)
    }

    /// [`Scenario::run_round_probed`] with a warm-start context carried
    /// across rounds: the Optimize step short-circuits rounds whose
    /// problem is unchanged and journals one `SolverResolve` delta line
    /// per round. Outcomes and journal bytes are identical whether the
    /// context has reuse enabled or not — the multi-round engine
    /// ([`crate::engine::run_series`]) threads one context per series.
    pub fn run_round_probed_ctx(
        &self,
        round: RoundId,
        design: Design,
        policy: CpPolicy,
        bid_count: Option<usize>,
        probe: &dyn Probe,
        ctx: &mut vdx_broker::OptimizeContext,
    ) -> RoundOutcome {
        let inputs = RoundInputs {
            world: &self.world,
            fleet: &self.fleet,
            contracts: &self.contracts,
            groups: &self.groups,
            background_load_kbps: &self.background_load,
            policy,
            mode: OptimizeMode::Heuristic,
            bid_count,
            margins: None,
        };
        vdx_core::run_decision_round_probed_ctx(
            design,
            &inputs,
            |a, b| self.score_of(a, b),
            round,
            probe,
            ctx,
        )
    }

    /// Total brokered demand.
    pub fn brokered_demand_kbps(&self) -> Kbps {
        self.groups.iter().map(|g| g.demand_kbps).sum()
    }
}

fn negotiate_all(fleet: &Fleet) -> Vec<Contract> {
    fleet
        .cdns
        .iter()
        .map(|c| negotiate_contract(fleet, c.id, DEFAULT_MARKUP))
        .collect()
}

/// Builds the dense (every city × cluster city) score table for a fleet.
fn score_matrix(net: &NetModel, world: &World, fleet: &Fleet) -> ScoreMatrix {
    let sites: Vec<CityId> = fleet.clusters.iter().map(|c| c.city).collect();
    ScoreMatrix::build(net, world, &sites)
}

/// A lazily built, process-wide small scenario for tests — building one
/// takes seconds, and every experiment test needs the same one.
#[cfg(test)]
pub(crate) fn shared_small() -> &'static Scenario {
    static SCENARIO: std::sync::OnceLock<Scenario> = std::sync::OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::small()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds_consistently() {
        let s = shared_small();
        assert_eq!(s.fleet.cdns.len(), 7);
        assert_eq!(s.groups.len(), s.background_kbps.len());
        assert_eq!(s.background_load.len(), s.fleet.clusters.len());
        assert!(s.brokered_demand_kbps() > Kbps::ZERO);
        // Capacities planned and contracts negotiated for every CDN.
        for cl in &s.fleet.clusters {
            assert!(cl.capacity_kbps > Kbps::ZERO);
        }
        for c in &s.contracts {
            assert!(c.base_price_per_mb > vdx_core::units::UsdPerGb::ZERO);
        }
    }

    #[test]
    fn all_designs_run_on_small_scenario() {
        let s = shared_small();
        for design in Design::TABLE3 {
            let out = s.run(design, CpPolicy::balanced());
            assert_eq!(out.assignment.choice.len(), s.groups.len(), "{design}");
        }
    }

    #[test]
    fn city_centric_expansion_keeps_ecosystem_consistent() {
        let s = shared_small();
        let big = s.with_city_centric(20);
        assert_eq!(big.fleet.cdns.len(), s.fleet.cdns.len() + 20);
        assert_eq!(big.background_load.len(), big.fleet.clusters.len());
        let out = big.run(Design::Marketplace, CpPolicy::balanced());
        assert_eq!(out.assignment.choice.len(), big.groups.len());
    }

    #[test]
    fn probed_runs_journal_caller_assigned_round_ids() {
        use vdx_obs::{Event, MemoryProbe};
        let mut s = Scenario::build(ScenarioConfig::small());
        let plain = s.run(Design::Marketplace, CpPolicy::balanced());
        let probe = Arc::new(MemoryProbe::new());
        s.set_probe(probe.clone());
        let probed = s.run_round(RoundId(7), Design::Marketplace, CpPolicy::balanced());
        assert_eq!(plain.assignment.choice, probed.assignment.choice);
        let events = probe.take();
        let started: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::RoundStarted { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        // Journaled under exactly the id the caller assigned.
        assert_eq!(started, vec![7]);
        s.run_round(RoundId(2), Design::Brokered, CpPolicy::balanced());
        assert!(probe
            .take()
            .iter()
            .any(|e| matches!(e, Event::RoundStarted { round: 2, .. })));
    }

    #[test]
    fn score_matrix_agrees_with_the_net_model_for_every_round_pair() {
        // Scenario::score_of answers from the precomputed matrix; every
        // (group city, cluster city) pair a decision round can ask for
        // must match the ground-truth network model exactly.
        let s = shared_small();
        for group in &s.groups {
            for cl in &s.fleet.clusters {
                assert_eq!(
                    s.score_of(group.city, cl.city),
                    s.net.score(&s.world, group.city, cl.city),
                    "({:?}, {:?})",
                    group.city,
                    cl.city
                );
            }
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = shared_small();
        let b = Scenario::build(ScenarioConfig::small());
        let out_a = a.run(Design::Marketplace, CpPolicy::balanced());
        let out_b = b.run(Design::Marketplace, CpPolicy::balanced());
        assert_eq!(out_a.assignment.choice, out_b.assignment.choice);
    }
}
