//! The soak harness: a transport-free reference driver for the
//! `vdx-exchanged` daemon, plus the plan format both sides replay.
//!
//! The daemon is a *second driver* over the same `vdx-core` round logic
//! as the in-process engine (ARCHITECTURE.md, "two drivers, one core").
//! Its soak test replays a [`SoakPlan`] twice — once through
//! [`SimReferenceDriver`] here, once against the live TCP server with
//! real `vdx-agent` processes silenced on the same rounds — and asserts
//! the two [`vdx_core::DriverRound`] sequences are equal.
//!
//! The reference driver therefore models exactly the daemon's
//! *observable* semantics, built from the same shared pieces:
//!
//! * per-CDN [`CircuitBreaker`]s decide routing (`Open` ⇒ the CDN gets
//!   no Share and is excluded outright);
//! * a silent CDN is a failure observation, then resolves through
//!   [`vdx_core::resolve_at_deadline`] (stale reuse under TTL, else
//!   exclusion, else Brokered fallback);
//! * bids come from [`BidEngine`], re-instantiated fresh every round —
//!   matching both the fault campaign's per-round agents and the
//!   daemon agent's default (no cross-round margin learning), so bid
//!   prices cannot drift between the drivers;
//! * fresh bids refresh the stale cache only when the round actually
//!   completes under its design (a fallback round stores nothing),
//!   mirroring `run_campaign`.

use crate::faults::FaultPlan;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdx_broker::{
    optimize_probed_ctx, BreakerConfig, BrokerProblem, CircuitBreaker, CpPolicy, OptimizeContext,
    OptimizeMode, StaleBidCache,
};
use vdx_cdn::{median_capacity, BidPolicy, CdnId, MatchingConfig};
use vdx_core::{
    assemble_options, picks_of, resolve_at_deadline, BidEngine, BidSource, DeadlineResolution,
    Design, DriverRound, ExchangeDriver, RoundId, RoundResolution,
};
use vdx_geo::CityId;
use vdx_obs::{Event, Probe};
use vdx_proto::{Bid, Share};

/// The matching rule a design's CDN agents apply (identical to the pure
/// decision round's). Shared by the fault campaign, this reference
/// driver, and the `vdx-agent` daemon client.
pub fn matching_for(design: Design) -> MatchingConfig {
    if design == Design::Omniscient {
        MatchingConfig::unrestricted()
    } else {
        MatchingConfig::default().with_max_candidates(design.max_candidates())
    }
}

/// Builds the round's Share batch from the scenario's client groups —
/// `share_id` = group index, the id convention every driver uses.
pub fn shares_of(scenario: &Scenario) -> Vec<Share> {
    scenario
        .groups
        .iter()
        .enumerate()
        .map(|(i, g)| Share {
            share_id: i as u64,
            location: g.city.0,
            isp: 0,
            content_id: 0,
            data_size_kbps: g.demand_kbps.as_f64(),
            client_count: g.sessions,
        })
        .collect()
}

/// Builds one CDN's per-round bid engine, configured exactly like the
/// fault campaign's per-round agents (and the daemon's `vdx-agent`).
pub fn round_engine(scenario: &Scenario, design: Design, cdn: u32) -> BidEngine {
    BidEngine::new(
        CdnId(cdn),
        BidPolicy::default(),
        matching_for(design),
        scenario.fleet.clusters.len(),
        scenario.background_load.clone(),
    )
    .with_design(
        design,
        scenario.contracts[cdn as usize].billed_price_per_mb(),
        median_capacity(&scenario.fleet, CdnId(cdn)),
    )
}

/// What one soak round injects: the CDNs whose agents stay silent (they
/// receive the Share but never Announce).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SoakRound {
    /// CDNs that do not answer this round.
    pub silent: Vec<u32>,
}

/// A full soak campaign: per-round silences plus the ladder knobs both
/// drivers must share for their decisions to be comparable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakPlan {
    /// One entry per round, in order. Rounds beyond the list are clean.
    pub rounds: Vec<SoakRound>,
    /// Stale-bid cache TTL, in rounds.
    pub stale_ttl_rounds: u64,
    /// The daemon's wall deadline per round, ms. The reference driver
    /// has no clock; it uses this only to label `deadline_missed`
    /// journal events identically.
    pub deadline_ms: u64,
    /// Circuit-breaker thresholds, shared by both drivers.
    pub breaker: BreakerConfig,
}

impl SoakPlan {
    /// A plan of `rounds` clean rounds with default ladder knobs.
    pub fn clean(rounds: usize) -> SoakPlan {
        SoakPlan {
            rounds: vec![SoakRound::default(); rounds],
            stale_ttl_rounds: 2,
            deadline_ms: 3_000,
            breaker: BreakerConfig::default(),
        }
    }

    /// The CDNs silent on `round` (empty past the end of the plan).
    pub fn silent(&self, round: u64) -> &[u32] {
        self.rounds
            .get(round as usize)
            .map(|r| r.silent.as_slice())
            .unwrap_or(&[])
    }

    /// Derives a soak plan from a fault campaign, translating each
    /// round's faults into what a daemon would *observe*: a failed CDN's
    /// agent answers nothing, a fully-lossy link delivers nothing, and
    /// an exchange outage silences everyone (the daemon cannot observe
    /// its own outage, so the nearest observable is total silence —
    /// which walks the same ladder to the same Brokered fallback once
    /// the cache runs dry). Partial loss/delay/jitter do not translate:
    /// TCP repairs them below the message layer.
    pub fn from_faults(plan: &FaultPlan, num_cdns: u32) -> SoakPlan {
        SoakPlan {
            rounds: plan
                .rounds
                .iter()
                .map(|f| SoakRound {
                    silent: if f.exchange_outage || f.drop_chance >= 1.0 {
                        (0..num_cdns).collect()
                    } else {
                        f.failed_cdns.clone()
                    },
                })
                .collect(),
            stale_ttl_rounds: plan.stale_ttl_rounds,
            deadline_ms: plan.deadline_ms,
            breaker: BreakerConfig::default(),
        }
    }
}

/// The in-process reference driver: replays a [`SoakPlan`] through the
/// exact shared round logic the daemon uses, without sockets or clocks.
/// See the module docs for the semantics it models.
pub struct SimReferenceDriver<'a> {
    scenario: &'a Scenario,
    design: Design,
    policy: CpPolicy,
    plan: SoakPlan,
    cache: StaleBidCache<Vec<Bid>>,
    breakers: Vec<CircuitBreaker>,
    ctx: OptimizeContext,
    probe: Arc<dyn Probe>,
}

impl<'a> SimReferenceDriver<'a> {
    /// Creates a reference driver over `scenario` for `design`.
    pub fn new(
        scenario: &'a Scenario,
        design: Design,
        policy: CpPolicy,
        plan: SoakPlan,
        probe: Arc<dyn Probe>,
    ) -> SimReferenceDriver<'a> {
        let n = scenario.fleet.cdns.len();
        SimReferenceDriver {
            scenario,
            design,
            policy,
            cache: StaleBidCache::new(n, plan.stale_ttl_rounds),
            breakers: (0..n).map(|_| CircuitBreaker::new(plan.breaker)).collect(),
            plan,
            ctx: OptimizeContext::new(),
            probe,
        }
    }

    /// Current health state of one CDN's breaker (for tests/reports).
    pub fn breaker(&self, cdn: usize) -> &CircuitBreaker {
        &self.breakers[cdn]
    }
}

impl ExchangeDriver for SimReferenceDriver<'_> {
    fn run_round(&mut self, round: u64) -> DriverRound {
        let scenario = self.scenario;
        let n = self.breakers.len();
        for (cdn, b) in self.breakers.iter_mut().enumerate() {
            if let Some(t) = b.begin_round(round) {
                if self.probe.enabled() {
                    self.probe.emit(Event::HealthTransition {
                        round,
                        cdn: cdn as u32,
                        from: t.from.name().into(),
                        to: t.to.name().into(),
                        reason: t.reason.into(),
                    });
                }
            }
        }
        if self.probe.enabled() {
            self.probe.emit(Event::RoundStarted {
                round,
                design: self.design.name(),
                groups: scenario.groups.len() as u64,
                cdns: n as u64,
            });
            self.probe.emit(Event::SharePublished {
                round,
                shares: scenario.groups.len() as u64,
                demand_kbps: scenario.groups.iter().map(|g| g.demand_kbps.as_f64()).sum(),
            });
        }
        let shares = shares_of(scenario);
        let silent = self.plan.silent(round).to_vec();
        let mut sources: Vec<BidSource> = Vec::with_capacity(n);
        for (cdn, breaker) in self.breakers.iter_mut().enumerate() {
            if !breaker.allows_route() {
                // Open: no Share was routed, no observation to make.
                sources.push(BidSource::Down);
                continue;
            }
            let probing = breaker.is_probe();
            if silent.contains(&(cdn as u32)) {
                let transition = breaker.on_failure(round);
                if self.probe.enabled() {
                    if probing {
                        self.probe.emit(Event::HealthProbe {
                            round,
                            cdn: cdn as u32,
                            success: false,
                        });
                    }
                    if let Some(t) = transition {
                        self.probe.emit(Event::HealthTransition {
                            round,
                            cdn: cdn as u32,
                            from: t.from.name().into(),
                            to: t.to.name().into(),
                            reason: t.reason.into(),
                        });
                    }
                }
                sources.push(BidSource::Silent);
            } else {
                let engine = round_engine(scenario, self.design, cdn as u32);
                let bids = engine.build_bids(&shares, &scenario.fleet, &|a: CityId, b: CityId| {
                    scenario.score_of(a, b)
                });
                let transition = breaker.on_success(round);
                if self.probe.enabled() {
                    self.probe.emit(Event::BidReceived {
                        round,
                        cdn: cdn as u32,
                        bids: bids.len() as u64,
                    });
                    if probing {
                        self.probe.emit(Event::HealthProbe {
                            round,
                            cdn: cdn as u32,
                            success: true,
                        });
                    }
                    if let Some(t) = transition {
                        self.probe.emit(Event::HealthTransition {
                            round,
                            cdn: cdn as u32,
                            from: t.from.name().into(),
                            to: t.to.name().into(),
                            reason: t.reason.into(),
                        });
                    }
                }
                sources.push(BidSource::Fresh(bids));
            }
        }
        match resolve_at_deadline(
            round,
            self.design,
            sources,
            scenario.groups.len(),
            &self.cache,
            round,
            self.plan.deadline_ms,
            self.probe.as_ref(),
        ) {
            DeadlineResolution::Proceed(bids_per_cdn, report) => {
                // Only fresh bids refresh the cache, and only when the
                // round completed under its design.
                for cdn in &report.fresh {
                    self.cache
                        .store(cdn.index(), round, bids_per_cdn[cdn.index()].clone());
                }
                let options = assemble_options(scenario.groups.len(), &bids_per_cdn);
                let problem = BrokerProblem {
                    groups: scenario.groups.clone(),
                    options,
                };
                let assignment = optimize_probed_ctx(
                    &problem,
                    &self.policy,
                    &OptimizeMode::Heuristic,
                    round,
                    self.probe.as_ref(),
                    &mut self.ctx,
                );
                if self.probe.enabled() {
                    let total_bids: u64 = problem.options.iter().map(|o| o.len() as u64).sum();
                    let accepted = problem.groups.len() as u64;
                    self.probe.emit(Event::AcceptIssued {
                        round,
                        accepted,
                        rejected: total_bids.saturating_sub(accepted),
                    });
                    self.probe.emit(Event::RoundCompleted {
                        round,
                        objective: assignment.objective,
                        options: total_bids,
                    });
                }
                DriverRound {
                    round,
                    resolution: if report.is_clean() {
                        RoundResolution::Fresh
                    } else {
                        RoundResolution::Degraded
                    },
                    picks: picks_of(&problem, &assignment),
                    objective: assignment.objective,
                }
            }
            DeadlineResolution::Fallback(_) => {
                let outcome = scenario.run_round_probed(
                    RoundId(round),
                    Design::Brokered,
                    self.policy,
                    None,
                    self.probe.as_ref(),
                );
                DriverRound {
                    round,
                    resolution: RoundResolution::Fallback,
                    picks: picks_of(&outcome.problem, &outcome.assignment),
                    objective: outcome.assignment.objective,
                }
            }
        }
    }
}

/// Replays the whole plan through the reference driver, returning one
/// [`DriverRound`] per plan round.
pub fn run_reference(
    scenario: &Scenario,
    design: Design,
    policy: CpPolicy,
    plan: SoakPlan,
    probe: Arc<dyn Probe>,
) -> Vec<DriverRound> {
    let rounds = plan.rounds.len() as u64;
    let mut driver = SimReferenceDriver::new(scenario, design, policy, plan, probe);
    (0..rounds).map(|r| driver.run_round(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use vdx_broker::HealthState;

    fn small_scenario() -> Scenario {
        let mut config = ScenarioConfig::small();
        config.seed = 4242;
        Scenario::build(config)
    }

    fn plan(rounds: Vec<Vec<u32>>) -> SoakPlan {
        SoakPlan {
            rounds: rounds
                .into_iter()
                .map(|silent| SoakRound { silent })
                .collect(),
            stale_ttl_rounds: 2,
            deadline_ms: 1_000,
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_rounds: 2,
            },
        }
    }

    #[test]
    fn clean_soak_rounds_are_fresh_and_match_the_pure_objective() {
        let scenario = small_scenario();
        let policy = CpPolicy::balanced();
        let rounds = run_reference(
            &scenario,
            Design::Marketplace,
            policy,
            plan(vec![vec![], vec![]]),
            vdx_obs::probe::noop(),
        );
        assert_eq!(rounds.len(), 2);
        for r in &rounds {
            assert_eq!(r.resolution, RoundResolution::Fresh);
            assert_eq!(r.picks.len(), scenario.groups.len());
        }
        let pure = scenario.run_round_probed(
            RoundId(0),
            Design::Marketplace,
            policy,
            None,
            vdx_obs::probe::noop().as_ref(),
        );
        assert!(
            (rounds[0].objective - pure.assignment.objective).abs() < 1e-6,
            "soak {} vs pure {}",
            rounds[0].objective,
            pure.assignment.objective
        );
    }

    #[test]
    fn a_silent_round_degrades_to_stale_reuse_and_recovers() {
        let scenario = small_scenario();
        let rounds = run_reference(
            &scenario,
            Design::Marketplace,
            CpPolicy::balanced(),
            plan(vec![vec![], vec![0], vec![]]),
            vdx_obs::probe::noop(),
        );
        assert_eq!(rounds[0].resolution, RoundResolution::Fresh);
        assert_eq!(rounds[1].resolution, RoundResolution::Degraded);
        assert_eq!(rounds[2].resolution, RoundResolution::Fresh);
        // The stale substitution reuses round 0's bids, so round 1's
        // decision equals round 0's.
        assert_eq!(rounds[1].picks, rounds[0].picks);
    }

    #[test]
    fn sustained_silence_trips_the_breaker_then_a_probe_recovers_it() {
        let scenario = small_scenario();
        let soak = plan(vec![
            vec![],  // 0: all fresh (fills the cache)
            vec![0], // 1: silent -> stale reuse, failure 1
            vec![0], // 2: silent -> stale reuse, failure 2 -> Open
            vec![],  // 3: Open (cooldown 2) -> excluded without observation
            vec![],  // 4: cooldown elapsed -> HalfOpen probe succeeds -> Closed
            vec![],  // 5: fresh again
        ]);
        let policy = CpPolicy::balanced();
        let mut driver = SimReferenceDriver::new(
            &scenario,
            Design::Marketplace,
            policy,
            soak,
            vdx_obs::probe::noop(),
        );
        let r: Vec<DriverRound> = (0..6).map(|i| driver.run_round(i)).collect();
        assert_eq!(r[0].resolution, RoundResolution::Fresh);
        assert_eq!(r[1].resolution, RoundResolution::Degraded);
        assert_eq!(r[2].resolution, RoundResolution::Degraded);
        // Round 3: breaker is Open, CDN 0 excluded outright even though
        // its agent would have answered.
        assert_eq!(r[3].resolution, RoundResolution::Degraded);
        assert_eq!(driver.breaker(0).state(), HealthState::Closed);
        assert_eq!(r[4].resolution, RoundResolution::Fresh);
        assert_eq!(r[5].resolution, RoundResolution::Fresh);
    }

    #[test]
    fn total_silence_past_the_ttl_falls_back_to_brokered() {
        let scenario = small_scenario();
        let n = scenario.fleet.cdns.len() as u32;
        let all: Vec<u32> = (0..n).collect();
        // Rounds 0-1 fill nothing (everyone silent from the start): the
        // cache is empty, every CDN is excluded, no group has options.
        let rounds = run_reference(
            &scenario,
            Design::Marketplace,
            CpPolicy::balanced(),
            plan(vec![all.clone(), all]),
            vdx_obs::probe::noop(),
        );
        assert_eq!(rounds[0].resolution, RoundResolution::Fallback);
        assert_eq!(rounds[1].resolution, RoundResolution::Fallback);
        assert_eq!(rounds[0].picks.len(), scenario.groups.len());
    }

    #[test]
    fn from_faults_translates_outages_and_blackouts_to_silence() {
        use crate::faults::{FaultPlan, RoundFaults};
        let fault_plan = FaultPlan {
            rounds: vec![
                RoundFaults::none(),
                RoundFaults {
                    failed_cdns: vec![1, 2],
                    ..RoundFaults::none()
                },
                RoundFaults {
                    exchange_outage: true,
                    ..RoundFaults::none()
                },
                RoundFaults {
                    drop_chance: 1.0,
                    ..RoundFaults::none()
                },
            ],
            seed: 7,
            stale_ttl_rounds: 3,
            deadline_ms: 500,
        };
        let soak = SoakPlan::from_faults(&fault_plan, 4);
        assert!(soak.rounds[0].silent.is_empty());
        assert_eq!(soak.rounds[1].silent, vec![1, 2]);
        assert_eq!(soak.rounds[2].silent, vec![0, 1, 2, 3]);
        assert_eq!(soak.rounds[3].silent, vec![0, 1, 2, 3]);
        assert_eq!(soak.stale_ttl_rounds, 3);
        assert_eq!(soak.deadline_ms, 500);
    }
}
