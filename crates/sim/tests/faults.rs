//! End-to-end fault-campaign checks (DESIGN.md §9): an empty plan is
//! bit-identical to the pure fast path, faulted campaigns are
//! deterministic, journals are thread-count independent, and the
//! degradation ladder fires in order.

use std::sync::{Arc, OnceLock};
use vdx_broker::CpPolicy;
use vdx_core::{Design, RoundId};
use vdx_obs::{Event, MemoryProbe, Probe};
use vdx_sim::faults::{run_campaign, FaultPlan, RoundAvailability, RoundFaults};
use vdx_sim::metrics::{compute, MetricsInput};
use vdx_sim::{Scenario, ScenarioConfig};

/// One shared small scenario for the whole test binary — building one
/// takes seconds.
fn shared() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::small()))
}

/// Canonical JSONL bytes of an event stream, wall-clock fields zeroed.
fn jsonl(mut events: Vec<Event>) -> String {
    let mut out = String::new();
    for e in &mut events {
        e.zero_wall_clock();
        out.push_str(&serde_json::to_string(e).expect("serializable"));
        out.push('\n');
    }
    out
}

#[test]
fn empty_plan_campaign_matches_the_pure_fast_path() {
    let s = shared();
    let design = Design::Marketplace;
    let policy = CpPolicy::balanced;
    let rounds = 3;

    let campaign_probe = Arc::new(MemoryProbe::new());
    let campaign = run_campaign(
        s,
        design,
        policy(),
        &FaultPlan::clean(rounds),
        0,
        campaign_probe.clone() as Arc<dyn Probe>,
    );

    // The reference: the same rounds run pure, journaled the same way.
    let pure_probe = Arc::new(MemoryProbe::new());
    for i in 0..rounds {
        let outcome = s.run_round_probed(
            RoundId(i as u64),
            design,
            policy(),
            None,
            pure_probe.as_ref(),
        );
        let expected = compute(&MetricsInput {
            scenario: s,
            outcome: &outcome,
        });
        assert_eq!(
            campaign.rounds[i].availability,
            RoundAvailability::Live,
            "clean rounds stay live"
        );
        assert_eq!(
            campaign.rounds[i].metrics, expected,
            "round {i}: clean-plan metrics are bit-exact"
        );
    }

    let a = jsonl(campaign_probe.take());
    let b = jsonl(pure_probe.take());
    assert!(!a.is_empty());
    assert_eq!(a, b, "an empty fault plan leaves the journal untouched");
}

/// A moderately hostile round: losses, corruption and delay, but no
/// outages.
fn adverse() -> RoundFaults {
    RoundFaults {
        drop_chance: 0.2,
        corrupt_chance: 0.05,
        delay_ms: 10,
        jitter_ms: 5,
        exchange_outage: false,
        failed_cdns: Vec::new(),
    }
}

#[test]
fn same_seed_same_plan_is_byte_identical() {
    let s = shared();
    let plan = FaultPlan {
        rounds: vec![RoundFaults::none(), adverse(), adverse()],
        seed: 7,
        stale_ttl_rounds: 2,
        deadline_ms: 2_000,
    };
    let run = || {
        let probe = Arc::new(MemoryProbe::new());
        let outcome = run_campaign(
            s,
            Design::Marketplace,
            CpPolicy::balanced(),
            &plan,
            0,
            probe.clone() as Arc<dyn Probe>,
        );
        (outcome, probe.take())
    };
    let (outcome_a, events_a) = run();
    let (outcome_b, events_b) = run();

    assert!(
        events_a
            .iter()
            .any(|e| matches!(e, Event::FaultPlanApplied { .. })),
        "faulted rounds journal their injected faults"
    );
    assert!(
        events_a
            .iter()
            .any(|e| matches!(e, Event::WireDrops { .. })),
        "wire accounting is journaled per live round"
    );
    for (a, b) in outcome_a.rounds.iter().zip(&outcome_b.rounds) {
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.metrics, b.metrics);
    }
    assert_eq!(
        jsonl(events_a),
        jsonl(events_b),
        "same seed + same plan must replay to identical journal bytes"
    );
}

#[cfg(feature = "parallel")]
#[test]
fn threads_do_not_change_the_faults_journal() {
    // The ext_faults cells fan out across the rayon pool; per-cell event
    // buffering must keep the journal schedule-independent.
    let run_with_threads = |scenario: &mut Scenario, threads: usize| -> String {
        let probe = Arc::new(MemoryProbe::new());
        scenario.set_probe(probe.clone());
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
            .install(|| {
                vdx_sim::experiment::ext_faults::run(scenario);
            });
        jsonl(probe.take())
    };
    let mut scenario = Scenario::build(ScenarioConfig::small());
    let one = run_with_threads(&mut scenario, 1);
    let four = run_with_threads(&mut scenario, 4);
    assert!(!one.is_empty());
    assert_eq!(one, four, "faults journal must be thread-count independent");
}

#[test]
fn degradation_ladder_fires_in_order() {
    let s = shared();
    let total_blackout = RoundFaults {
        drop_chance: 1.0,
        corrupt_chance: 0.0,
        delay_ms: 0,
        jitter_ms: 0,
        exchange_outage: false,
        failed_cdns: Vec::new(),
    };
    let plan = FaultPlan {
        rounds: vec![
            RoundFaults::none(),
            total_blackout.clone(),
            total_blackout.clone(),
            total_blackout,
        ],
        seed: 11,
        stale_ttl_rounds: 2,
        deadline_ms: 300,
    };
    let probe = Arc::new(MemoryProbe::new());
    let campaign = run_campaign(
        s,
        Design::Marketplace,
        CpPolicy::balanced(),
        &plan,
        0,
        probe.clone() as Arc<dyn Probe>,
    );

    let availabilities: Vec<RoundAvailability> =
        campaign.rounds.iter().map(|r| r.availability).collect();
    assert_eq!(
        availabilities,
        vec![
            // Round 0 is clean: fresh bids fill the stale cache.
            RoundAvailability::Live,
            // Rounds 1–2: nothing arrives, but the cache is within its
            // 2-round TTL — the broker serves on stale bids.
            RoundAvailability::Degraded,
            RoundAvailability::Degraded,
            // Round 3: the cache has aged out; no group is covered, so
            // the design gives up and the round runs as Brokered.
            RoundAvailability::Fallback,
        ],
    );
    // A stale round reuses round 0's bids verbatim, so it reproduces
    // round 0's assignment and metrics exactly.
    assert_eq!(campaign.rounds[1].metrics, campaign.rounds[0].metrics);
    assert_eq!(campaign.rounds[2].metrics, campaign.rounds[0].metrics);

    let events = probe.take();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::DeadlineMissed { round: 1, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::StaleBidsReused { round: 1, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::DesignFallback { round: 3, .. })));
}
