//! End-to-end flight-recorder checks: a journaled run produces a valid,
//! complete JSONL journal, and two identically seeded runs produce
//! byte-identical journals once wall-clock fields are zeroed.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use vdx_broker::CpPolicy;
use vdx_core::{Design, RoundId};
use vdx_obs::{read_journal, Event, Journal, JournalProbe, Probe, Stopwatch, SCHEMA_VERSION};
use vdx_sim::replay::{replay, ReplayConfig};
use vdx_sim::{Scenario, ScenarioConfig};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vdx-sim-journal-{}-{name}", std::process::id()));
    p
}

/// One full journaled run at small scale: header, two decision rounds,
/// a short replay, terminal record.
fn journaled_run(path: &Path) {
    let clock = Stopwatch::start();
    let journal = Journal::create(path).expect("create journal");
    let probe = Arc::new(JournalProbe::new(journal));
    probe.emit(Event::RunHeader {
        schema: SCHEMA_VERSION,
        experiment: "determinism".into(),
        seed: 2017,
        scale: "small".into(),
        // Wall-clock read deliberate here: the test proves zero_wall_clock
        // scrubs it, so journals stay byte-identical across runs.
        #[allow(clippy::disallowed_methods)]
        started_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        threads: 0,
        git_commit: "test-build".into(),
    });
    let mut scenario = Scenario::build(ScenarioConfig::small());
    scenario.set_probe(probe.clone());
    scenario.run_round(RoundId(0), Design::Marketplace, CpPolicy::balanced());
    scenario.run_round(RoundId(1), Design::Brokered, CpPolicy::balanced());
    replay(
        &scenario,
        &ReplayConfig {
            bin_s: 1200.0,
            ..Default::default()
        },
    );
    drop(scenario);
    let journal = Arc::try_unwrap(probe)
        .expect("probe no longer shared")
        .into_journal()
        .expect("no swallowed write errors");
    journal
        .finish("determinism", clock.elapsed_ms())
        .expect("finish journal");
}

/// Reads a journal back, zeroes wall-clock fields, and re-serializes to
/// canonical JSONL bytes.
fn canonical_bytes(path: &Path) -> Vec<u8> {
    let mut events = read_journal(path).expect("every line parses as an Event");
    for e in &mut events {
        e.zero_wall_clock();
    }
    let mut out = Vec::new();
    for e in &events {
        out.extend_from_slice(serde_json::to_string(e).expect("serializable").as_bytes());
        out.push(b'\n');
    }
    out
}

#[test]
fn journaled_run_is_valid_and_byte_deterministic() {
    let path_a = temp_path("a.jsonl");
    let path_b = temp_path("b.jsonl");
    journaled_run(&path_a);
    journaled_run(&path_b);

    let events = read_journal(&path_a).expect("journal A parses");
    assert!(
        matches!(events.first(), Some(Event::RunHeader { seed: 2017, .. })),
        "journal opens with the run header"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::RoundStarted { .. })),
        "at least one decision round was journaled"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::SolverStats { .. })),
        "solver effort was journaled"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::SessionMoved { .. })),
        "replay churn was journaled"
    );
    match events.last() {
        Some(Event::ExperimentFinished { events: n, .. }) => {
            assert_eq!(
                *n as usize,
                events.len() - 1,
                "terminal record counts its precursors"
            );
        }
        other => panic!("journal must end with ExperimentFinished, got {other:?}"),
    }

    let a = canonical_bytes(&path_a);
    let b = canonical_bytes(&path_b);
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same-seed journals are byte-identical after wall-clock zeroing"
    );

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

/// Journals a full table3 run (eight fanned-out rounds) inside a rayon
/// pool of `threads` workers.
#[cfg(feature = "parallel")]
fn journaled_table3(path: &Path, threads: usize) {
    let clock = Stopwatch::start();
    let journal = Journal::create(path).expect("create journal");
    let probe = Arc::new(JournalProbe::new(journal));
    let mut scenario = Scenario::build(ScenarioConfig::small());
    scenario.set_probe(probe.clone());
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(|| {
            vdx_sim::experiment::table3::run(&scenario);
        });
    drop(scenario);
    let journal = Arc::try_unwrap(probe)
        .expect("probe no longer shared")
        .into_journal()
        .expect("no swallowed write errors");
    journal
        .finish("table3", clock.elapsed_ms())
        .expect("finish journal");
}

#[cfg(feature = "parallel")]
#[test]
fn journaled_table3_is_byte_identical_across_thread_counts() {
    let path_1 = temp_path("t1.jsonl");
    let path_4 = temp_path("t4.jsonl");
    journaled_table3(&path_1, 1);
    journaled_table3(&path_4, 4);
    let a = canonical_bytes(&path_1);
    let b = canonical_bytes(&path_4);
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "round buffering must make the journal schedule-independent"
    );
    std::fs::remove_file(&path_1).ok();
    std::fs::remove_file(&path_4).ok();
}

/// Journals a multi-round table3 run (the warm-start hot loop: one
/// series of `rounds` rounds per design) inside a rayon pool of
/// `threads` workers, with reuse on or off.
#[cfg(feature = "parallel")]
fn journaled_table3_multi(path: &Path, threads: usize, rounds: u64, reuse: bool) {
    let clock = Stopwatch::start();
    let journal = Journal::create(path).expect("create journal");
    let probe = Arc::new(JournalProbe::new(journal));
    let mut scenario = Scenario::build(ScenarioConfig::small());
    scenario.set_probe(probe.clone());
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(|| {
            vdx_sim::experiment::table3::run_multi(&scenario, rounds, reuse);
        });
    drop(scenario);
    let journal = Arc::try_unwrap(probe)
        .expect("probe no longer shared")
        .into_journal()
        .expect("no swallowed write errors");
    journal
        .finish("table3", clock.elapsed_ms())
        .expect("finish journal");
}

/// The tentpole's byte-identity contract end to end: warm-started and
/// cold multi-round table3 journals — `SolverResolve` delta lines
/// included — are byte-identical to each other and across thread counts.
#[cfg(feature = "parallel")]
#[test]
fn warm_started_table3_journals_are_byte_identical_to_cold_across_threads() {
    let warm_1 = temp_path("warm1.jsonl");
    let warm_4 = temp_path("warm4.jsonl");
    let cold_1 = temp_path("cold1.jsonl");
    let cold_4 = temp_path("cold4.jsonl");
    journaled_table3_multi(&warm_1, 1, 3, true);
    journaled_table3_multi(&warm_4, 4, 3, true);
    journaled_table3_multi(&cold_1, 1, 3, false);
    journaled_table3_multi(&cold_4, 4, 3, false);

    let reference = canonical_bytes(&warm_1);
    assert!(!reference.is_empty());
    let events = read_journal(&warm_1).expect("warm journal parses");
    let resolves = events
        .iter()
        .filter(|e| matches!(e, Event::SolverResolve { .. }))
        .count();
    assert_eq!(resolves, 8 * 3, "one delta line per design per round");
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::SolverResolve {
                warm_eligible: true,
                ..
            }
        )),
        "static scenario makes rounds after the first warm-eligible"
    );

    for (name, path) in [
        ("warm_4", &warm_4),
        ("cold_1", &cold_1),
        ("cold_4", &cold_4),
    ] {
        assert_eq!(
            canonical_bytes(path),
            reference,
            "{name} journal must match the warm single-threaded reference"
        );
    }
    for path in [&warm_1, &warm_4, &cold_1, &cold_4] {
        std::fs::remove_file(path).ok();
    }
}
