//! Serial-vs-parallel determinism: running an experiment inside a
//! 1-thread and a 4-thread rayon pool must produce byte-identical JSON
//! results — the contract the experiment engine's indexed fan-out exists
//! to uphold.

#![cfg(feature = "parallel")]

use std::sync::OnceLock;
use vdx_sim::experiment::{fig17, table3};
use vdx_sim::{Scenario, ScenarioConfig};

fn scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::small()))
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

#[test]
fn table3_is_byte_identical_for_one_and_four_threads() {
    let s = scenario();
    let serial = pool(1).install(|| serde_json::to_string(&table3::run(s)).expect("serialize"));
    let parallel = pool(4).install(|| serde_json::to_string(&table3::run(s)).expect("serialize"));
    assert_eq!(serial, parallel);
}

#[test]
fn fig17_is_byte_identical_for_one_and_four_threads() {
    let s = scenario();
    let serial = pool(1).install(|| serde_json::to_string(&fig17::run(s)).expect("serialize"));
    let parallel = pool(4).install(|| serde_json::to_string(&fig17::run(s)).expect("serialize"));
    assert_eq!(serial, parallel);
}
