//! Min-cost max-flow via successive shortest augmenting paths.
//!
//! An independent exact method used to cross-check the simplex/MILP stack:
//! when every client in an [`crate::AssignmentProblem`] has the same load,
//! the GAP collapses to a transportation problem that min-cost flow solves
//! exactly in polynomial time. `vdx-sim`'s ablation benches also use it to
//! quantify what the general-load heuristic gives up.
//!
//! Implementation: successive shortest paths with Johnson potentials —
//! one initial Bellman–Ford pass absorbs the negative construction costs
//! into node potentials, after which every augmenting path is found by
//! Dijkstra over non-negative *reduced* costs and saturated along its
//! full bottleneck residual capacity (a "bottleneck bundle", not one
//! unit at a time). [`FlowNetwork::min_cost_flow_spfa`] retains the old
//! queue-based Bellman–Ford search as an independent reference path; a
//! unit test pins the two to the same flow and cost.

/// Edge index in a [`FlowNetwork`].
pub type EdgeId = usize;

/// A directed flow network with per-edge capacity and cost.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// Adjacency: for each node, indices into `edges`.
    adj: Vec<Vec<EdgeId>>,
    to: Vec<usize>,
    cap: Vec<i64>,
    cost: Vec<f64>,
}

impl FlowNetwork {
    /// Creates a network with `nodes` nodes.
    pub fn new(nodes: usize) -> FlowNetwork {
        FlowNetwork {
            adj: vec![Vec::new(); nodes],
            ..Default::default()
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` and unit cost
    /// `cost`; returns its id. A paired residual edge is added internally.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or negative capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: f64) -> EdgeId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        let id = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.cost.push(cost);
        self.adj[from].push(id);
        // Residual edge.
        self.to.push(from);
        self.cap.push(0);
        self.cost.push(-cost);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently on edge `id` (forward edges only).
    pub fn flow_on(&self, id: EdgeId, original_cap: i64) -> i64 {
        original_cap - self.cap[id]
    }

    /// Sends up to `max_flow` units from `source` to `sink` at minimum
    /// cost. Returns `(flow_sent, total_cost)`.
    ///
    /// Successive shortest paths with Johnson potentials: one initial
    /// Bellman–Ford absorbs negative construction costs into node
    /// potentials; every subsequent search is Dijkstra over the
    /// non-negative reduced costs, and each found path is saturated
    /// along its full bottleneck residual capacity.
    pub fn min_cost_flow(&mut self, source: usize, sink: usize, max_flow: i64) -> (i64, f64) {
        let n = self.num_nodes();
        let mut flow = 0i64;
        let mut total_cost = 0.0;

        // Johnson potentials from one Bellman–Ford over the initial
        // residual graph (edge costs may be negative at construction;
        // no negative cycles by construction, so n−1 passes settle).
        let mut pot = vec![f64::INFINITY; n];
        pot[source] = 0.0;
        for _ in 0..n.saturating_sub(1) {
            let mut relaxed = false;
            for e in 0..self.to.len() {
                if self.cap[e] == 0 {
                    continue;
                }
                let u = self.to[e ^ 1];
                if pot[u].is_infinite() {
                    continue;
                }
                let nd = pot[u] + self.cost[e];
                if nd < pot[self.to[e]] - 1e-12 {
                    pot[self.to[e]] = nd;
                    relaxed = true;
                }
            }
            if !relaxed {
                break;
            }
        }

        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge: Vec<Option<EdgeId>> = vec![None; n];
        let mut done = vec![false; n];
        while flow < max_flow {
            // Dijkstra from source on reduced costs.
            dist.iter_mut().for_each(|d| *d = f64::INFINITY);
            prev_edge.iter_mut().for_each(|p| *p = None);
            done.iter_mut().for_each(|d| *d = false);
            dist[source] = 0.0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(HeapEntry {
                dist: 0.0,
                node: source,
            });
            while let Some(HeapEntry { node: u, .. }) = heap.pop() {
                if done[u] {
                    continue;
                }
                done[u] = true;
                if u == sink {
                    break;
                }
                for &e in &self.adj[u] {
                    if self.cap[e] == 0 {
                        continue;
                    }
                    let v = self.to[e];
                    if done[v] || pot[v].is_infinite() {
                        continue;
                    }
                    // Reduced cost is ≥ 0 by the potential invariant;
                    // clamp float noise so Dijkstra's premise holds.
                    let reduced = (self.cost[e] + pot[u] - pot[v]).max(0.0);
                    let nd = dist[u] + reduced;
                    if nd < dist[v] - 1e-12 {
                        dist[v] = nd;
                        prev_edge[v] = Some(e);
                        heap.push(HeapEntry { dist: nd, node: v });
                    }
                }
            }
            if dist[sink].is_infinite() {
                break; // no augmenting path
            }
            // Fold the found distances into the potentials so the next
            // round's reduced costs stay non-negative.
            for v in 0..n {
                if dist[v].is_finite() && pot[v].is_finite() {
                    pot[v] += dist[v];
                }
            }
            // Bottleneck bundle: saturate the path's full residual
            // capacity in one augmentation.
            let mut bottleneck = max_flow - flow;
            let mut v = sink;
            while v != source {
                let e = prev_edge[v].expect("path exists");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = sink;
            while v != source {
                let e = prev_edge[v].expect("path exists");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                total_cost += self.cost[e] * bottleneck as f64;
                v = self.to[e ^ 1];
            }
            flow += bottleneck;
        }
        (flow, total_cost)
    }

    /// The previous implementation — queue-based Bellman–Ford (SPFA)
    /// shortest paths with bottleneck augmentation — retained as an
    /// independent reference for pinning [`FlowNetwork::min_cost_flow`]'s
    /// flow and cost.
    pub fn min_cost_flow_spfa(&mut self, source: usize, sink: usize, max_flow: i64) -> (i64, f64) {
        let n = self.num_nodes();
        let mut flow = 0i64;
        let mut total_cost = 0.0;
        while flow < max_flow {
            // Bellman–Ford from source on the residual graph.
            let mut dist = vec![f64::INFINITY; n];
            let mut in_queue = vec![false; n];
            let mut prev_edge: Vec<Option<EdgeId>> = vec![None; n];
            dist[source] = 0.0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            in_queue[source] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                for &e in &self.adj[u] {
                    if self.cap[e] > 0 {
                        let v = self.to[e];
                        let nd = dist[u] + self.cost[e];
                        if nd < dist[v] - 1e-12 {
                            dist[v] = nd;
                            prev_edge[v] = Some(e);
                            if !in_queue[v] {
                                queue.push_back(v);
                                in_queue[v] = true;
                            }
                        }
                    }
                }
            }
            if dist[sink].is_infinite() {
                break; // no augmenting path
            }
            // Find bottleneck.
            let mut bottleneck = max_flow - flow;
            let mut v = sink;
            while v != source {
                let e = prev_edge[v].expect("path exists");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            // Augment.
            let mut v = sink;
            while v != source {
                let e = prev_edge[v].expect("path exists");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                total_cost += self.cost[e] * bottleneck as f64;
                v = self.to[e ^ 1];
            }
            flow += bottleneck;
        }
        (flow, total_cost)
    }
}

/// Dijkstra work-queue entry ordered as a min-heap by distance.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &HeapEntry) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &HeapEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &HeapEntry) -> std::cmp::Ordering {
        // Reverse on distance for min-heap behaviour; node index breaks
        // ties deterministically. Distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Solves a *uniform-load* assignment exactly by min-cost flow.
///
/// `values[c][k]` is the value of assigning client `c` to bucket
/// `buckets[c][k]`; every assignment consumes one capacity unit
/// (`capacities` are in units of clients). Returns `(choice, objective)`
/// with `choice[c]` an index into `buckets[c]`, or `None` if total capacity
/// cannot host every client.
pub fn solve_unit_assignment(
    buckets: &[Vec<usize>],
    values: &[Vec<f64>],
    capacities: &[i64],
) -> Option<(Vec<usize>, f64)> {
    assert_eq!(buckets.len(), values.len());
    let clients = buckets.len();
    let nbuckets = capacities.len();
    // Nodes: 0 = source, 1..=clients = clients, then buckets, then sink.
    let bucket_base = 1 + clients;
    let sink = bucket_base + nbuckets;
    let mut net = FlowNetwork::new(sink + 1);
    // Max value (to convert maximization into min-cost).
    let vmax = values
        .iter()
        .flat_map(|v| v.iter())
        .copied()
        .fold(0.0f64, f64::max);
    let mut edge_of: Vec<Vec<EdgeId>> = Vec::with_capacity(clients);
    for c in 0..clients {
        net.add_edge(0, 1 + c, 1, 0.0);
        assert_eq!(buckets[c].len(), values[c].len());
        let mut edges = Vec::with_capacity(buckets[c].len());
        for (k, &b) in buckets[c].iter().enumerate() {
            assert!(b < nbuckets, "bucket out of range");
            edges.push(net.add_edge(1 + c, bucket_base + b, 1, vmax - values[c][k]));
        }
        edge_of.push(edges);
    }
    for (b, &cap) in capacities.iter().enumerate() {
        net.add_edge(bucket_base + b, sink, cap.max(0), 0.0);
    }
    let (flow, _) = net.min_cost_flow(0, sink, clients as i64);
    if flow < clients as i64 {
        return None;
    }
    let mut choice = vec![usize::MAX; clients];
    let mut objective = 0.0;
    for c in 0..clients {
        for (k, &e) in edge_of[c].iter().enumerate() {
            if net.flow_on(e, 1) == 1 {
                choice[c] = k;
                objective += values[c][k];
                break;
            }
        }
        assert_ne!(
            choice[c],
            usize::MAX,
            "client {c} unassigned despite full flow"
        );
    }
    Some((choice, objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::{AssignmentProblem, CandidateOption};
    use crate::milp::MilpConfig;
    use vdx_units::Kbps;

    #[test]
    fn simple_flow() {
        // source(0) -> 1 -> sink(2), two parallel edges of different cost.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2, 1.0);
        net.add_edge(0, 1, 2, 3.0);
        net.add_edge(1, 2, 4, 0.0);
        let (flow, cost) = net.min_cost_flow(0, 2, 4);
        assert_eq!(flow, 4);
        assert!((cost - (2.0 * 1.0 + 2.0 * 3.0)).abs() < 1e-9);
    }

    #[test]
    fn flow_stops_at_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3, 1.0);
        let (flow, _) = net.min_cost_flow(0, 1, 10);
        assert_eq!(flow, 3);
    }

    #[test]
    fn unit_assignment_prefers_value() {
        // 2 clients, 2 buckets, capacity 1 each.
        let buckets = vec![vec![0, 1], vec![0, 1]];
        let values = vec![vec![5.0, 1.0], vec![4.0, 2.0]];
        let (choice, obj) = solve_unit_assignment(&buckets, &values, &[1, 1]).expect("feasible");
        // Optimal: client 0 -> bucket 0 (5), client 1 -> bucket 1 (2) = 7.
        assert_eq!(choice, vec![0, 1]);
        assert!((obj - 7.0).abs() < 1e-9);
    }

    #[test]
    fn unit_assignment_infeasible_when_capacity_short() {
        let buckets = vec![vec![0], vec![0]];
        let values = vec![vec![1.0], vec![1.0]];
        assert!(solve_unit_assignment(&buckets, &values, &[1]).is_none());
    }

    #[test]
    fn dijkstra_path_pins_cost_against_spfa_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..20 {
            // Random layered unit-assignment-shaped networks: negative
            // construction costs (value conversion) included.
            let clients = rng.gen_range(2..7);
            let nbuckets = rng.gen_range(2..5);
            let bucket_base = 1 + clients;
            let sink = bucket_base + nbuckets;
            let mut net = FlowNetwork::new(sink + 1);
            for c in 0..clients {
                net.add_edge(0, 1 + c, 1, 0.0);
                for b in 0..nbuckets {
                    let cost = rng.gen_range(-10.0..10.0);
                    net.add_edge(1 + c, bucket_base + b, 1, cost);
                }
            }
            for b in 0..nbuckets {
                net.add_edge(bucket_base + b, sink, rng.gen_range(1..4), 0.0);
            }
            let mut reference = net.clone();
            let (flow, cost) = net.min_cost_flow(0, sink, clients as i64);
            let (ref_flow, ref_cost) = reference.min_cost_flow_spfa(0, sink, clients as i64);
            assert_eq!(flow, ref_flow, "trial {trial}: flow disagrees");
            assert!(
                (cost - ref_cost).abs() < 1e-6,
                "trial {trial}: cost {cost} vs reference {ref_cost}"
            );
        }
    }

    #[test]
    fn dijkstra_handles_negative_costs_via_potentials() {
        // A path whose cheap route needs the negative edge: Dijkstra
        // without potentials would miss it.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 5.0);
        net.add_edge(0, 2, 1, 1.0);
        net.add_edge(2, 1, 1, -4.0); // 0→2→1 costs −3, beats direct 5
        net.add_edge(1, 3, 2, 0.0);
        let (flow, cost) = net.min_cost_flow(0, 3, 2);
        assert_eq!(flow, 2);
        assert!((cost - (-3.0 + 5.0)).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn flow_matches_milp_on_uniform_load_gap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..10 {
            let nbuckets = rng.gen_range(2..4);
            let clients = rng.gen_range(2..6);
            let caps: Vec<i64> = (0..nbuckets).map(|_| rng.gen_range(1..4)).collect();
            if caps.iter().sum::<i64>() < clients as i64 {
                continue;
            }
            let mut buckets = Vec::new();
            let mut values = Vec::new();
            let mut gap =
                AssignmentProblem::new(caps.iter().map(|&c| Kbps::new(c as f64)).collect());
            for _ in 0..clients {
                let bs: Vec<usize> = (0..nbuckets).collect();
                let vs: Vec<f64> = bs
                    .iter()
                    .map(|_| (rng.gen_range(0..100) as f64) / 10.0)
                    .collect();
                gap.add_client(
                    bs.iter()
                        .zip(&vs)
                        .map(|(&b, &v)| CandidateOption {
                            bucket: b,
                            value: v,
                            load: Kbps::new(1.0),
                        })
                        .collect(),
                );
                buckets.push(bs);
                values.push(vs);
            }
            let flow_sol = solve_unit_assignment(&buckets, &values, &caps);
            let milp_sol = gap.solve_exact(&MilpConfig::default());
            match (flow_sol, milp_sol) {
                (Some((_, fobj)), Some(m)) => {
                    assert!(
                        (fobj - m.objective).abs() < 1e-6,
                        "trial {trial}: flow {fobj} vs milp {}",
                        m.objective
                    );
                }
                (None, None) => {}
                (f, m) => panic!("trial {trial}: feasibility disagreement {f:?} vs {m:?}"),
            }
        }
    }
}
