//! The broker's assignment problem (generalized assignment, GAP).
//!
//! This is the paper's Fig 9 ILP in structural form: every client picks
//! exactly one of its candidate options (client-to-cluster matchings), each
//! option has a *value* (the `wp·performance − wc·cost·bitrate` term) and a
//! *load* (the client's bitrate) against the option's capacity *bucket*
//! (the cluster). The broker maximizes total value subject to per-bucket
//! capacity.
//!
//! Three solution paths:
//!
//! * [`AssignmentProblem::solve_greedy`] — regret-ordered greedy: clients
//!   with the most to lose choose first; always produces a complete
//!   assignment (falling back to the least-overloading option when nothing
//!   fits, since a real broker must send every client *somewhere*).
//! * [`AssignmentProblem::improve_local`] — first-improvement move/swap
//!   local search on top of any assignment.
//! * [`AssignmentProblem::solve_exact`] — the exact MILP, for validation
//!   and small scenarios.
//!
//! Capacity semantics: the capacities given here are what the broker
//! *believes* (designs differ in how accurate that belief is); true-capacity
//! congestion is measured downstream in `vdx-sim`.

use crate::milp::{solve_milp_with_stats, MilpConfig, MilpOutcome};
use crate::model::{LinearProgram, Relation};
use crate::stats::SolveStats;
use vdx_units::Kbps;

/// One candidate option for a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateOption {
    /// Capacity bucket (cluster) the option consumes.
    pub bucket: usize,
    /// Contribution to the objective if chosen (higher is better).
    pub value: f64,
    /// Load placed on the bucket if chosen (e.g. the client's bitrate).
    pub load: Kbps,
}

/// A generalized assignment problem.
///
/// `PartialEq` compares options and capacities exactly (bitwise on the
/// underlying floats) — the warm-start layer ([`crate::warm`]) uses it
/// to detect unchanged rounds, and any rounding drift must register as
/// a change.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AssignmentProblem {
    /// Candidate options per client; every client must have ≥ 1 option.
    pub options: Vec<Vec<CandidateOption>>,
    /// Capacity per bucket.
    pub capacities: Vec<Kbps>,
}

/// A complete assignment: for each client, the index into its option list.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `choice[c]` = index into `options[c]`.
    pub choice: Vec<usize>,
    /// Total value of the assignment.
    pub objective: f64,
}

impl AssignmentProblem {
    /// Creates a problem with the given bucket capacities.
    pub fn new(capacities: Vec<Kbps>) -> AssignmentProblem {
        AssignmentProblem {
            options: Vec::new(),
            capacities,
        }
    }

    /// Adds a client with its candidate options; returns the client index.
    ///
    /// # Panics
    /// Panics if `options` is empty or references an unknown bucket.
    pub fn add_client(&mut self, options: Vec<CandidateOption>) -> usize {
        assert!(
            !options.is_empty(),
            "every client needs at least one option"
        );
        for o in &options {
            assert!(
                o.bucket < self.capacities.len(),
                "bucket {} out of range",
                o.bucket
            );
            assert!(o.load >= Kbps::ZERO, "loads must be non-negative");
        }
        self.options.push(options);
        self.options.len() - 1
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.options.len()
    }

    /// Total value of a choice vector.
    pub fn value_of(&self, choice: &[usize]) -> f64 {
        choice
            .iter()
            .enumerate()
            .map(|(c, &o)| self.options[c][o].value)
            .sum()
    }

    /// Load placed on each bucket by a choice vector.
    pub fn bucket_loads(&self, choice: &[usize]) -> Vec<Kbps> {
        let mut loads = vec![Kbps::ZERO; self.capacities.len()];
        for (c, &o) in choice.iter().enumerate() {
            let opt = self.options[c][o];
            loads[opt.bucket] += opt.load;
        }
        // Conservation: the demand placed by the choice vector must equal
        // the load that lands on buckets — any drift is an accounting bug.
        #[cfg(feature = "strict-invariants")]
        {
            let placed: f64 = choice
                .iter()
                .enumerate()
                .map(|(c, &o)| self.options[c][o].load.as_f64())
                .sum();
            let landed: f64 = loads.iter().map(|l| l.as_f64()).sum();
            debug_assert!(
                (placed - landed).abs() <= 1e-6 * placed.abs().max(1.0),
                "bucket loads lost demand: placed {placed}, landed {landed}"
            );
        }
        loads
    }

    /// Whether a choice vector respects all (believed) capacities.
    pub fn respects_capacities(&self, choice: &[usize], tol: Kbps) -> bool {
        self.bucket_loads(choice)
            .iter()
            .zip(&self.capacities)
            .all(|(l, c)| *l <= *c + tol)
    }

    /// Regret-ordered greedy construction (see module docs). Always returns
    /// a complete assignment.
    pub fn solve_greedy(&self) -> Assignment {
        let n = self.num_clients();
        // Order clients by regret (gap between best and second-best value),
        // largest first; ties by client index for determinism.
        let mut order: Vec<usize> = (0..n).collect();
        let regret = |c: usize| -> f64 {
            let mut values: Vec<f64> = self.options[c].iter().map(|o| o.value).collect();
            values.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            if values.len() >= 2 {
                values[0] - values[1]
            } else {
                f64::INFINITY // single-option clients are fully constrained
            }
        };
        order.sort_by(|&a, &b| {
            regret(b)
                .partial_cmp(&regret(a))
                .expect("finite")
                .then(a.cmp(&b))
        });

        let mut remaining = self.capacities.clone();
        let mut choice = vec![0usize; n];
        for &c in &order {
            // Best-value option that fits.
            let mut best: Option<(usize, f64)> = None;
            for (i, o) in self.options[c].iter().enumerate() {
                if o.load <= remaining[o.bucket] {
                    if best.map_or(true, |(_, v)| o.value > v) {
                        best = Some((i, o.value));
                    }
                }
            }
            let pick = match best {
                Some((i, _)) => i,
                None => {
                    // Nothing fits: minimize relative overload, then value.
                    (0..self.options[c].len())
                        .min_by(|&a, &b| {
                            let oa = self.options[c][a];
                            let ob = self.options[c][b];
                            let ra = overload_ratio(oa, &remaining, &self.capacities);
                            let rb = overload_ratio(ob, &remaining, &self.capacities);
                            ra.partial_cmp(&rb)
                                .expect("finite")
                                .then(ob.value.partial_cmp(&oa.value).expect("finite"))
                        })
                        .expect("client has options")
                }
            };
            let o = self.options[c][pick];
            remaining[o.bucket] -= o.load;
            choice[c] = pick;
        }
        let objective = self.value_of(&choice);
        Assignment { choice, objective }
    }

    /// First-improvement local search: single-client moves and two-client
    /// swaps, bounded by `max_rounds` full passes. Only accepts moves that
    /// keep (believed) capacities respected for every touched bucket, so a
    /// feasible input stays feasible; infeasible inputs can only improve.
    pub fn improve_local(&self, start: Assignment, max_rounds: usize) -> Assignment {
        let mut choice = start.choice;
        let mut loads = self.bucket_loads(&choice);
        for _ in 0..max_rounds {
            let mut improved = false;
            // Single-client moves.
            for c in 0..self.num_clients() {
                let cur = self.options[c][choice[c]];
                for (i, o) in self.options[c].iter().enumerate() {
                    if i == choice[c] || o.value <= cur.value {
                        continue;
                    }
                    let fits = if o.bucket == cur.bucket {
                        (loads[o.bucket] - cur.load + o.load).as_f64()
                            <= self.capacities[o.bucket].as_f64() + 1e-9
                    } else {
                        (loads[o.bucket] + o.load).as_f64()
                            <= self.capacities[o.bucket].as_f64() + 1e-9
                    };
                    if fits {
                        loads[cur.bucket] -= cur.load;
                        loads[o.bucket] += o.load;
                        choice[c] = i;
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let objective = self.value_of(&choice);
        Assignment { choice, objective }
    }

    /// Greedy followed by local search — the production pipeline.
    pub fn solve_heuristic(&self) -> Assignment {
        self.improve_local(self.solve_greedy(), 8)
    }

    /// Exact solve via MILP. Returns `None` when no capacity-respecting
    /// complete assignment exists or the node budget is exhausted without
    /// an incumbent.
    pub fn solve_exact(&self, config: &MilpConfig) -> Option<Assignment> {
        let mut stats = SolveStats::new();
        self.solve_exact_with_stats(config, &mut stats)
    }

    /// [`AssignmentProblem::solve_exact`] with search effort accumulated
    /// into `stats` (branch-and-bound nodes, simplex pivots, and the root
    /// relaxation bound on the objective).
    pub fn solve_exact_with_stats(
        &self,
        config: &MilpConfig,
        stats: &mut SolveStats,
    ) -> Option<Assignment> {
        // Variables: one binary per (client, option).
        let mut var_of: Vec<Vec<usize>> = Vec::with_capacity(self.num_clients());
        let mut num_vars = 0usize;
        for opts in &self.options {
            let vars: Vec<usize> = (0..opts.len()).map(|i| num_vars + i).collect();
            num_vars += opts.len();
            var_of.push(vars);
        }
        let mut lp = LinearProgram::maximize(num_vars);
        for (c, opts) in self.options.iter().enumerate() {
            for (i, o) in opts.iter().enumerate() {
                lp.set_objective(var_of[c][i], o.value);
                lp.set_upper_bound(var_of[c][i], 1.0);
            }
            // Exactly one option per client.
            let coeffs: Vec<(usize, f64)> = var_of[c].iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(coeffs, Relation::Eq, 1.0);
        }
        for (b, &cap) in self.capacities.iter().enumerate() {
            let mut coeffs = Vec::new();
            for (c, opts) in self.options.iter().enumerate() {
                for (i, o) in opts.iter().enumerate() {
                    if o.bucket == b && o.load > Kbps::ZERO {
                        coeffs.push((var_of[c][i], o.load.as_f64()));
                    }
                }
            }
            if !coeffs.is_empty() {
                lp.add_constraint(coeffs, Relation::Le, cap.as_f64());
            }
        }
        let all_vars: Vec<usize> = (0..num_vars).collect();
        match solve_milp_with_stats(&lp, &all_vars, config, stats) {
            MilpOutcome::Solved { values, .. } => {
                let mut choice = vec![0usize; self.num_clients()];
                for (c, vars) in var_of.iter().enumerate() {
                    choice[c] = vars
                        .iter()
                        .position(|&v| values[v] > 0.5)
                        .expect("exactly-one constraint held");
                }
                let objective = self.value_of(&choice);
                Some(Assignment { choice, objective })
            }
            _ => None,
        }
    }
}

fn overload_ratio(o: CandidateOption, remaining: &[Kbps], capacities: &[Kbps]) -> f64 {
    let cap = capacities[o.bucket].as_f64().max(1e-12);
    // How far past capacity this bucket would go, relative to capacity.
    (o.load.as_f64() - remaining[o.bucket].as_f64()).max(0.0) / cap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(bucket: usize, value: f64, load: f64) -> CandidateOption {
        CandidateOption {
            bucket,
            value,
            load: Kbps::new(load),
        }
    }

    fn caps(v: &[f64]) -> Vec<Kbps> {
        v.iter().map(|&c| Kbps::new(c)).collect()
    }

    #[test]
    fn greedy_prefers_value_within_capacity() {
        let mut p = AssignmentProblem::new(caps(&[10.0, 10.0]));
        p.add_client(vec![opt(0, 5.0, 4.0), opt(1, 3.0, 4.0)]);
        p.add_client(vec![opt(0, 5.0, 4.0), opt(1, 3.0, 4.0)]);
        let a = p.solve_greedy();
        // Both fit on bucket 0 (8 <= 10): both take the high-value option.
        assert_eq!(a.objective, 10.0);
        assert!(p.respects_capacities(&a.choice, Kbps::new(1e-9)));
    }

    #[test]
    fn greedy_splits_when_capacity_binds() {
        let mut p = AssignmentProblem::new(caps(&[4.0, 10.0]));
        p.add_client(vec![opt(0, 5.0, 4.0), opt(1, 3.0, 4.0)]);
        p.add_client(vec![opt(0, 5.0, 4.0), opt(1, 1.0, 4.0)]);
        let a = p.solve_greedy();
        // Client 1 has regret 4 (5-1) > client 0's regret 2, so client 1
        // grabs bucket 0; client 0 falls to bucket 1. Total 5 + 3 = 8.
        assert_eq!(a.objective, 8.0);
        assert!(p.respects_capacities(&a.choice, Kbps::new(1e-9)));
    }

    #[test]
    fn greedy_overloads_least_when_forced() {
        let mut p = AssignmentProblem::new(caps(&[1.0, 100.0]));
        p.add_client(vec![opt(0, 9.0, 5.0), opt(1, 8.0, 5.0)]);
        let a = p.solve_greedy();
        // Nothing fits bucket 0 (cap 1), bucket 1 fits: overload ratio 0.
        assert_eq!(a.choice, vec![1]);
    }

    #[test]
    fn local_search_improves_bad_start() {
        let mut p = AssignmentProblem::new(caps(&[10.0, 10.0]));
        p.add_client(vec![opt(0, 1.0, 2.0), opt(1, 9.0, 2.0)]);
        let start = Assignment {
            choice: vec![0],
            objective: 1.0,
        };
        let improved = p.improve_local(start, 4);
        assert_eq!(improved.choice, vec![1]);
        assert_eq!(improved.objective, 9.0);
    }

    #[test]
    fn local_search_respects_capacity() {
        let mut p = AssignmentProblem::new(caps(&[2.0, 10.0]));
        p.add_client(vec![opt(0, 9.0, 2.0), opt(1, 5.0, 2.0)]);
        p.add_client(vec![opt(0, 9.0, 2.0), opt(1, 5.0, 2.0)]);
        let a = p.solve_heuristic();
        assert!(p.respects_capacities(&a.choice, Kbps::new(1e-9)));
        assert_eq!(a.objective, 14.0); // one on each bucket
    }

    #[test]
    fn exact_matches_brute_force_small() {
        let mut p = AssignmentProblem::new(caps(&[5.0, 5.0, 5.0]));
        p.add_client(vec![opt(0, 4.0, 3.0), opt(1, 3.0, 3.0), opt(2, 1.0, 3.0)]);
        p.add_client(vec![opt(0, 4.0, 3.0), opt(1, 2.0, 3.0), opt(2, 1.0, 3.0)]);
        p.add_client(vec![opt(0, 5.0, 3.0), opt(1, 2.0, 3.0), opt(2, 2.0, 3.0)]);
        let exact = p.solve_exact(&MilpConfig::default()).expect("solvable");
        // Brute force.
        let mut best = f64::MIN;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let choice = vec![a, b, c];
                    if p.respects_capacities(&choice, Kbps::new(1e-9)) {
                        best = best.max(p.value_of(&choice));
                    }
                }
            }
        }
        assert!(
            (exact.objective - best).abs() < 1e-6,
            "{} vs {}",
            exact.objective,
            best
        );
        assert!(p.respects_capacities(&exact.choice, Kbps::new(1e-6)));
    }

    #[test]
    fn heuristic_close_to_exact_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let mut total_gap = 0.0;
        for _ in 0..20 {
            let buckets = rng.gen_range(2..5);
            let mut p = AssignmentProblem::new(
                (0..buckets)
                    .map(|_| Kbps::new(rng.gen_range(5.0..20.0)))
                    .collect(),
            );
            let clients = rng.gen_range(3..8);
            for _ in 0..clients {
                let k = rng.gen_range(1..=buckets);
                let opts: Vec<CandidateOption> = (0..k)
                    .map(|b| opt(b, rng.gen_range(0.0..10.0), rng.gen_range(1.0..4.0)))
                    .collect();
                p.add_client(opts);
            }
            let heur = p.solve_heuristic();
            if let Some(exact) = p.solve_exact(&MilpConfig::default()) {
                // The heuristic may overload capacity as a last resort (a
                // broker must place every client); only a *feasible*
                // heuristic solution is bounded by the exact optimum.
                if p.respects_capacities(&heur.choice, Kbps::new(1e-9)) {
                    assert!(heur.objective <= exact.objective + 1e-6);
                    if exact.objective.abs() > 1e-9 {
                        total_gap += (exact.objective - heur.objective) / exact.objective.abs();
                    }
                }
            }
        }
        // Average optimality gap should be modest on these easy instances.
        assert!(total_gap / 20.0 < 0.15, "avg gap {}", total_gap / 20.0);
    }

    #[test]
    fn bucket_loads_accounting() {
        let mut p = AssignmentProblem::new(caps(&[10.0, 10.0]));
        p.add_client(vec![opt(0, 1.0, 3.0)]);
        p.add_client(vec![opt(0, 1.0, 4.0), opt(1, 1.0, 4.0)]);
        let loads = p.bucket_loads(&[0, 1]);
        assert_eq!(loads, vec![Kbps::new(3.0), Kbps::new(4.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one option")]
    fn empty_options_panics() {
        AssignmentProblem::new(caps(&[1.0])).add_client(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        AssignmentProblem::new(caps(&[1.0])).add_client(vec![opt(5, 1.0, 1.0)]);
    }

    #[test]
    fn exact_with_stats_reports_effort_and_tight_gap() {
        use crate::stats::SolveStats;
        let mut p = AssignmentProblem::new(caps(&[5.0, 5.0]));
        p.add_client(vec![opt(0, 4.0, 3.0), opt(1, 3.0, 3.0)]);
        p.add_client(vec![opt(0, 4.0, 3.0), opt(1, 2.0, 3.0)]);
        let mut stats = SolveStats::new();
        let exact = p
            .solve_exact_with_stats(&MilpConfig::default(), &mut stats)
            .expect("solvable");
        let plain = p.solve_exact(&MilpConfig::default()).expect("solvable");
        assert_eq!(
            exact, plain,
            "stats variant changes nothing about the answer"
        );
        assert!(stats.bnb_nodes >= 1);
        let bound = stats.best_bound.expect("root solved");
        assert!(bound >= exact.objective - 1e-9);
    }
}
