//! # vdx-solver — optimization substrate for VDX
//!
//! The paper's broker solves the ILP of its Fig 9 with Gurobi: assign every
//! client to exactly one of its candidate matchings, maximizing
//! `wp·performance − wc·cost·bitrate` subject to per-cluster capacity. That
//! is a **generalized assignment problem** (GAP). Gurobi is proprietary, so
//! this crate provides the full solving stack from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex for linear programs
//!   (Bland's rule, so it terminates on degenerate problems);
//! * [`milp`] — branch-and-bound over the simplex relaxation for mixed
//!   integer programs; exact on the scales used in tests and small scenarios;
//! * [`gap`] — the broker's assignment problem as a first-class type, with
//!   a regret-greedy constructor, a move/swap local search, and an exact
//!   MILP path for validation;
//! * [`flow`] — successive-shortest-path min-cost flow, an independent
//!   exact method for the *uniform-load* special case, used to cross-check
//!   the other solvers;
//! * [`model`] — the shared LP/constraint builder types;
//! * [`stats`] — plain effort counters ([`SolveStats`]: simplex pivots,
//!   branch-and-bound nodes, best bound, warm/cold re-solve outcomes)
//!   filled in by the `*_with_stats` entry points, so callers can report
//!   solver work without this crate knowing anything about event sinks;
//! * [`warm`] — warm-started incremental re-solves: a [`SolverContext`]
//!   carried across rounds that short-circuits unchanged problems,
//!   optionally repairs small deltas by dual re-pricing, and otherwise
//!   falls back to the cold pipeline bit-for-bit.
//!
//! The heuristic pipeline (greedy + local search) is what CDN-scale
//! simulations use — mirroring how a production broker would trade
//! optimality for latency — and property tests bound its gap against the
//! exact solvers.
//!
//! This crate depends on nothing but `std` (tests use `rand`/`proptest`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod gap;
pub mod milp;
pub mod model;
pub mod simplex;
pub mod stats;
pub mod warm;

pub use gap::{Assignment, AssignmentProblem, CandidateOption};
pub use milp::{solve_milp, solve_milp_with_stats, MilpConfig, MilpOutcome};
pub use model::{Constraint, LinearProgram, Relation};
pub use simplex::{solve_lp, solve_lp_with_stats, LpOutcome, LpSolution};
pub use stats::SolveStats;
pub use warm::{ProblemDelta, ResolveInfo, ResolveKind, SolverContext, WarmPolicy};
