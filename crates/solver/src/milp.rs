//! Branch-and-bound mixed-integer programming over the simplex relaxation.
//!
//! Depth-first branch and bound with best-incumbent pruning, branching on
//! the most fractional integer variable. Exact (within tolerance) when it
//! runs to completion; a node budget turns it into an anytime solver that
//! reports whether optimality was proven — mirroring how a real broker
//! would bound its decision latency.

use crate::model::{LinearProgram, Relation};
use crate::simplex::{solve_lp_with_stats, LpOutcome};
use crate::stats::SolveStats;

/// Integrality tolerance: a value within this of an integer counts as one.
pub const INT_TOL: f64 = 1e-6;

/// Branch-and-bound configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MilpConfig {
    /// Maximum number of LP relaxations to solve before giving up and
    /// returning the incumbent (with `proven_optimal = false`).
    pub node_limit: usize,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            node_limit: 100_000,
        }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub enum MilpOutcome {
    /// A feasible integer solution was found.
    Solved {
        /// Objective value in the problem's own sense.
        objective: f64,
        /// Variable values (integer variables are integral within tolerance).
        values: Vec<f64>,
        /// Whether the search proved optimality (node budget not exhausted).
        proven_optimal: bool,
    },
    /// No feasible integer point exists (or none found within budget and
    /// the relaxation is infeasible).
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
}

impl MilpOutcome {
    /// The values if solved.
    pub fn values(&self) -> Option<&[f64]> {
        match self {
            MilpOutcome::Solved { values, .. } => Some(values),
            _ => None,
        }
    }

    /// The objective if solved.
    pub fn objective(&self) -> Option<f64> {
        match self {
            MilpOutcome::Solved { objective, .. } => Some(*objective),
            _ => None,
        }
    }
}

/// Solves `lp` with the variables in `integer_vars` restricted to integers.
///
/// # Panics
/// Panics if an index in `integer_vars` is out of range.
pub fn solve_milp(lp: &LinearProgram, integer_vars: &[usize], config: &MilpConfig) -> MilpOutcome {
    let mut stats = SolveStats::new();
    solve_milp_with_stats(lp, integer_vars, config, &mut stats)
}

/// Solves `lp` as [`solve_milp`] does, additionally accumulating search
/// effort into `stats`: every LP relaxation solved counts one
/// branch-and-bound node (and its simplex pivots), and the root
/// relaxation's objective is recorded as [`SolveStats::best_bound`] —
/// branching only tightens it, so it bounds the true optimum throughout.
///
/// # Panics
/// Panics if an index in `integer_vars` is out of range.
pub fn solve_milp_with_stats(
    lp: &LinearProgram,
    integer_vars: &[usize],
    config: &MilpConfig,
    stats: &mut SolveStats,
) -> MilpOutcome {
    for &v in integer_vars {
        assert!(v < lp.num_vars, "integer variable {v} out of range");
    }
    let mut is_int = vec![false; lp.num_vars];
    for &v in integer_vars {
        is_int[v] = true;
    }

    // Each stack entry is a problem with extra bound rows.
    let mut stack: Vec<LinearProgram> = vec![lp.clone()];
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let sign = if lp.maximize { 1.0 } else { -1.0 };
    let mut exhausted = false;

    while let Some(problem) = stack.pop() {
        if nodes >= config.node_limit {
            exhausted = true;
            break;
        }
        nodes += 1;
        stats.bnb_nodes += 1;
        let relax = solve_lp_with_stats(&problem, stats);
        let sol = match relax {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // Unbounded relaxation at the root means an unbounded MILP
                // (for our problem class); deeper nodes only tighten bounds,
                // so report it directly.
                return MilpOutcome::Unbounded;
            }
        };
        if nodes == 1 {
            // The root relaxation bounds the optimum for the whole search.
            stats.best_bound = Some(sol.objective);
        }
        // Prune: relaxation cannot beat the incumbent.
        if let Some((best, _)) = &incumbent {
            if sign * sol.objective <= sign * *best + 1e-9 {
                continue;
            }
        }
        // Find most fractional integer variable.
        let frac_var = is_int
            .iter()
            .enumerate()
            .filter(|&(i, &ii)| ii && frac(sol.values[i]) > INT_TOL)
            .max_by(|a, b| {
                let fa = (frac(sol.values[a.0]) - 0.5).abs();
                let fb = (frac(sol.values[b.0]) - 0.5).abs();
                fb.partial_cmp(&fa).expect("finite")
            })
            .map(|(i, _)| i);
        match frac_var {
            None => {
                // Integral: new incumbent.
                let obj = sol.objective;
                let better = match &incumbent {
                    None => true,
                    Some((best, _)) => sign * obj > sign * *best,
                };
                if better {
                    incumbent = Some((obj, sol.values));
                }
            }
            Some(v) => {
                let x = sol.values[v];
                let floor = x.floor();
                // Branch down: x <= floor.
                let mut down = problem.clone();
                down.add_constraint(vec![(v, 1.0)], Relation::Le, floor);
                // Branch up: x >= floor + 1.
                let mut up = problem;
                up.add_constraint(vec![(v, 1.0)], Relation::Ge, floor + 1.0);
                // DFS: push "up" first so "down" explores first (bias toward
                // zeros, which suits assignment problems).
                stack.push(up);
                stack.push(down);
            }
        }
    }

    match incumbent {
        Some((objective, values)) => MilpOutcome::Solved {
            objective,
            values,
            proven_optimal: !exhausted,
        },
        None => MilpOutcome::Infeasible,
    }
}

fn frac(x: f64) -> f64 {
    (x - x.round()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary => a=0? Check all:
        // items (v,w): a(10,3) b(13,4) c(7,2); capacity 6.
        // {a,c}: v=17 w=5 ok; {b,c}: v=20 w=6 ok; best = 20.
        let mut lp = LinearProgram::maximize(3);
        lp.set_objective(0, 10.0)
            .set_objective(1, 13.0)
            .set_objective(2, 7.0);
        for i in 0..3 {
            lp.set_upper_bound(i, 1.0);
        }
        lp.add_constraint(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 6.0);
        let out = solve_milp(&lp, &[0, 1, 2], &MilpConfig::default());
        match out {
            MilpOutcome::Solved {
                objective,
                values,
                proven_optimal,
            } => {
                assert_close(objective, 20.0);
                assert!(proven_optimal);
                assert_close(values[1], 1.0);
                assert_close(values[2], 1.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integrality_changes_the_answer() {
        // max x, 2x <= 5: LP gives 2.5; integer gives 2.
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 2.0)], Relation::Le, 5.0);
        let out = solve_milp(&lp, &[0], &MilpConfig::default());
        assert_close(out.objective().expect("solved"), 2.0);
    }

    #[test]
    fn infeasible_milp() {
        // 0.4 <= x <= 0.6, x integer.
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 0.4);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 0.6);
        assert!(matches!(
            solve_milp(&lp, &[0], &MilpConfig::default()),
            MilpOutcome::Infeasible
        ));
    }

    #[test]
    fn unbounded_milp() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        assert!(matches!(
            solve_milp(&lp, &[0], &MilpConfig::default()),
            MilpOutcome::Unbounded
        ));
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + y, x integer, x + y <= 3.5, y <= 1.2:
        // best x = 2 (then y <= 1.2 within 3.5 - 2 = 1.5) => obj 5.2;
        // x = 3 forces y <= 0.5 => obj 6.5. So x=3, y=0.5.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 2.0).set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 3.5);
        lp.set_upper_bound(1, 1.2);
        let out = solve_milp(&lp, &[0], &MilpConfig::default());
        match out {
            MilpOutcome::Solved {
                objective, values, ..
            } => {
                assert_close(objective, 6.5);
                assert_close(values[0], 3.0);
                assert_close(values[1], 0.5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_problem_exact() {
        // 2 clients x 2 clusters, binary assignment, each client exactly one
        // cluster, cluster capacity 1 each. Values: c0: (5, 1), c1: (4, 2).
        // Both prefer cluster 0 but capacity forces a split: best total is
        // 5 + 2 = 7 (c0->cl0, c1->cl1).
        let mut lp = LinearProgram::maximize(4); // x[c][k] = var 2c + k
        lp.set_objective(0, 5.0)
            .set_objective(1, 1.0)
            .set_objective(2, 4.0)
            .set_objective(3, 2.0);
        for v in 0..4 {
            lp.set_upper_bound(v, 1.0);
        }
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        lp.add_constraint(vec![(2, 1.0), (3, 1.0)], Relation::Eq, 1.0);
        lp.add_constraint(vec![(0, 1.0), (2, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(1, 1.0), (3, 1.0)], Relation::Le, 1.0);
        let out = solve_milp(&lp, &[0, 1, 2, 3], &MilpConfig::default());
        assert_close(out.objective().expect("solved"), 7.0);
    }

    #[test]
    fn node_limit_yields_unproven_incumbent() {
        // A problem needing a few branches; with node_limit=1 the root
        // relaxation is fractional and no incumbent exists => Infeasible
        // reported only if no integer point was found; with limit 2-3 we may
        // find one unproven. Use a loose check.
        let mut lp = LinearProgram::maximize(3);
        for i in 0..3 {
            lp.set_objective(i, 1.0 + i as f64 * 0.3);
            lp.set_upper_bound(i, 1.0);
        }
        lp.add_constraint(vec![(0, 2.0), (1, 2.0), (2, 2.0)], Relation::Le, 3.0);
        let full = solve_milp(&lp, &[0, 1, 2], &MilpConfig::default());
        let full_obj = full.objective().expect("solved");
        let limited = solve_milp(&lp, &[0, 1, 2], &MilpConfig { node_limit: 3 });
        if let MilpOutcome::Solved {
            objective,
            proven_optimal,
            ..
        } = limited
        {
            assert!(objective <= full_obj + 1e-9);
            let _ = proven_optimal; // may or may not be proven at this size
        }
    }

    #[test]
    fn milp_matches_lp_when_lp_is_integral() {
        // Totally unimodular constraint matrix (assignment): LP relaxation
        // is already integral, so MILP == LP.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 3.0).set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        let milp = solve_milp(&lp, &[0, 1], &MilpConfig::default());
        let lp_sol = crate::simplex::solve_lp(&lp);
        assert_close(
            milp.objective().expect("solved"),
            lp_sol.optimal().expect("optimal").objective,
        );
    }

    #[test]
    fn stats_variant_counts_nodes_and_bounds_the_optimum() {
        use crate::stats::SolveStats;
        // Knapsack from above: the LP relaxation is fractional, so the
        // search must branch (> 1 node) and the root bound dominates.
        let mut lp = LinearProgram::maximize(3);
        lp.set_objective(0, 10.0)
            .set_objective(1, 13.0)
            .set_objective(2, 7.0);
        for i in 0..3 {
            lp.set_upper_bound(i, 1.0);
        }
        lp.add_constraint(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 6.0);
        let mut stats = SolveStats::new();
        let out = solve_milp_with_stats(&lp, &[0, 1, 2], &MilpConfig::default(), &mut stats);
        let objective = out.objective().expect("solved");
        assert_close(objective, 20.0);
        assert!(stats.bnb_nodes > 1, "fractional root must branch");
        assert!(
            stats.pivots >= stats.bnb_nodes,
            "every node pivots at least once here"
        );
        let bound = stats.best_bound.expect("root relaxation solved");
        assert!(
            bound >= objective - 1e-9,
            "bound {bound} dominates {objective}"
        );
        let gap = stats.optimality_gap(objective).expect("bound set");
        assert!(
            gap >= 0.0 && gap < 0.2,
            "small gap on a tiny knapsack, got {gap}"
        );
    }
}
