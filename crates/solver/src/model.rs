//! Linear-program model types shared by the simplex and MILP solvers.
//!
//! Variables are indexed `0..num_vars`, implicitly bounded below by zero;
//! optional upper bounds are carried per variable. Constraints store sparse
//! coefficient lists. The representation favours clarity over raw speed —
//! the problems VDX solves are thousands of variables, not millions.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A single linear constraint with sparse coefficients.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint sense.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (dense, length `num_vars`).
    pub objective: Vec<f64>,
    /// `true` to maximize, `false` to minimize.
    pub maximize: bool,
    /// The constraints.
    pub constraints: Vec<Constraint>,
    /// Optional per-variable upper bounds (lower bounds are all zero).
    pub upper_bounds: Vec<Option<f64>>,
}

impl LinearProgram {
    /// Creates an empty maximization program with `num_vars` variables and
    /// an all-zero objective.
    pub fn maximize(num_vars: usize) -> LinearProgram {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            maximize: true,
            constraints: Vec::new(),
            upper_bounds: vec![None; num_vars],
        }
    }

    /// Creates an empty minimization program.
    pub fn minimize(num_vars: usize) -> LinearProgram {
        LinearProgram {
            maximize: false,
            ..LinearProgram::maximize(num_vars)
        }
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> &mut Self {
        self.objective[var] = coeff;
        self
    }

    /// Sets the upper bound of variable `var`.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) -> &mut Self {
        self.upper_bounds[var] = Some(bound);
        self
    }

    /// Adds a constraint; panics if a variable index is out of range or
    /// duplicated within the constraint.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        let mut seen = vec![false; self.num_vars];
        for &(i, _) in &coeffs {
            assert!(i < self.num_vars, "variable index {i} out of range");
            assert!(!seen[i], "duplicate variable index {i} in constraint");
            seen[i] = true;
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        self
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks feasibility of a point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        for (i, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                if x[i] > ub + tol {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 3.0)
            .set_objective(1, 2.0)
            .set_upper_bound(1, 5.0)
            .add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        assert_eq!(lp.objective, vec![3.0, 2.0]);
        assert_eq!(lp.constraints.len(), 1);
        assert_eq!(lp.upper_bounds[1], Some(5.0));
    }

    #[test]
    fn feasibility_checks_everything() {
        let mut lp = LinearProgram::maximize(2);
        lp.set_upper_bound(0, 2.0)
            .add_constraint(vec![(0, 1.0), (1, 2.0)], Relation::Le, 10.0)
            .add_constraint(vec![(1, 1.0)], Relation::Ge, 1.0);
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 2.0], 1e-9)); // ub violated
        assert!(!lp.is_feasible(&[1.0, 0.0], 1e-9)); // Ge violated
        assert!(!lp.is_feasible(&[-1.0, 2.0], 1e-9)); // negativity
        assert!(!lp.is_feasible(&[1.0, 5.0], 1e-9)); // Le violated
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value() {
        let mut lp = LinearProgram::maximize(3);
        lp.set_objective(0, 1.0).set_objective(2, -2.0);
        assert_eq!(lp.objective_value(&[3.0, 100.0, 1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn constraint_index_out_of_range_panics() {
        LinearProgram::maximize(1).add_constraint(vec![(1, 1.0)], Relation::Le, 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_index_panics() {
        LinearProgram::maximize(2).add_constraint(vec![(0, 1.0), (0, 2.0)], Relation::Le, 0.0);
    }
}
