//! Dense two-phase primal simplex.
//!
//! A deliberately classical implementation (tableau form, Bland's rule):
//! clarity and guaranteed termination over speed, in the spirit of the
//! project's "simplicity and robustness" design goals. Problem sizes in VDX
//! are at most a few thousand variables — well within dense-tableau range.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution; phase 2 optimizes the real objective. Upper bounds
//! are lowered to explicit `≤` rows (simple, and cheap at our sizes).

use crate::model::{LinearProgram, Relation};
use crate::stats::SolveStats;

/// Numerical tolerance used throughout the solver.
pub const EPS: f64 = 1e-9;

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Objective value in the problem's own sense (max or min).
    pub objective: f64,
    /// Variable values.
    pub values: Vec<f64>,
}

/// Result of solving an LP.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// The solution if optimal.
    pub fn optimal(&self) -> Option<&LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Solves a linear program. See module docs for method.
pub fn solve_lp(lp: &LinearProgram) -> LpOutcome {
    let mut tableau = Tableau::build(lp);
    tableau.solve(lp)
}

/// Solves a linear program, adding the pivot count to `stats`. Identical
/// to [`solve_lp`] otherwise.
pub fn solve_lp_with_stats(lp: &LinearProgram, stats: &mut SolveStats) -> LpOutcome {
    let mut tableau = Tableau::build(lp);
    let outcome = tableau.solve(lp);
    stats.pivots += tableau.pivots;
    outcome
}

struct Tableau {
    /// `rows × (cols + 1)`; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Phase-2 cost row (minimization costs), length `cols + 1`.
    cost: Vec<f64>,
    /// Phase-1 cost row, length `cols + 1`.
    art_cost: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total structural+slack columns (artificials live in `art_range`).
    cols: usize,
    /// Column range holding artificial variables.
    art_start: usize,
    n_orig: usize,
    /// Pivot operations performed so far (the solver's unit of work).
    pivots: u64,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let n = lp.num_vars;
        // Expand upper bounds into extra `≤` rows.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for c in &lp.constraints {
            let mut dense = vec![0.0; n];
            for &(i, a) in &c.coeffs {
                dense[i] = a;
            }
            rows.push((dense, c.relation, c.rhs));
        }
        for (i, ub) in lp.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                let mut dense = vec![0.0; n];
                dense[i] = 1.0;
                rows.push((dense, Relation::Le, *ub));
            }
        }
        // Normalise RHS to be non-negative.
        for (dense, rel, rhs) in &mut rows {
            if *rhs < 0.0 {
                for v in dense.iter_mut() {
                    *v = -*v;
                }
                *rhs = -*rhs;
                *rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }

        let m = rows.len();
        // Column layout: [structural | slacks/surplus | artificials].
        let n_slack = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Ge | Relation::Eq))
            .count();
        let art_start = n + n_slack;
        let cols = n + n_slack + n_art;

        let mut a = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        let mut art_idx = art_start;
        for (r, (dense, rel, rhs)) in rows.iter().enumerate() {
            a[r][..n].copy_from_slice(dense);
            a[r][cols] = *rhs;
            match rel {
                Relation::Le => {
                    a[r][slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    a[r][slack_idx] = -1.0;
                    slack_idx += 1;
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }

        // Phase-2 costs: minimize (negate if the problem maximizes).
        let mut cost = vec![0.0; cols + 1];
        for i in 0..n {
            cost[i] = if lp.maximize {
                -lp.objective[i]
            } else {
                lp.objective[i]
            };
        }
        // Phase-1 costs: minimize the sum of artificials; expressed in terms
        // of the non-basic variables by subtracting the artificial rows.
        let mut art_cost = vec![0.0; cols + 1];
        for c in art_start..cols {
            art_cost[c] = 1.0;
        }
        for (r, &b) in basis.iter().enumerate() {
            if b >= art_start {
                for cidx in 0..=cols {
                    art_cost[cidx] -= a[r][cidx];
                }
            }
        }
        // Make the phase-2 cost row consistent with the starting basis too
        // (basic slack columns have zero cost, so nothing to do there).

        Tableau {
            a,
            cost,
            art_cost,
            basis,
            cols,
            art_start,
            n_orig: n,
            pivots: 0,
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS);
        for v in self.a[row].iter_mut() {
            *v /= p;
        }
        let pivot_row = self.a[row].clone();
        for r in 0..self.a.len() {
            if r != row {
                let f = self.a[r][col];
                if f.abs() > EPS {
                    for (v, pv) in self.a[r].iter_mut().zip(&pivot_row) {
                        *v -= f * pv;
                    }
                }
            }
        }
        for costs in [&mut self.cost, &mut self.art_cost] {
            let f = costs[col];
            if f.abs() > EPS {
                for (v, pv) in costs.iter_mut().zip(&pivot_row) {
                    *v -= f * pv;
                }
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations on the given cost row.
    /// `allow_art`: whether artificial columns may enter the basis.
    /// Returns `false` if the objective is unbounded.
    fn iterate(&mut self, phase1: bool, allow_art: bool) -> bool {
        loop {
            // Bland's rule: entering column = lowest index with negative
            // reduced cost.
            let limit = if allow_art { self.cols } else { self.art_start };
            let costs = if phase1 { &self.art_cost } else { &self.cost };
            let entering = (0..limit).find(|&c| costs[c] < -EPS);
            let Some(col) = entering else {
                return true; // optimal
            };
            // Ratio test; tie-break by lowest basis index (Bland).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let arc = self.a[r][col];
                if arc > EPS {
                    let ratio = self.a[r][self.cols] / arc;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return false; // unbounded
            };
            self.pivot(row, col);
        }
    }

    fn solve(&mut self, lp: &LinearProgram) -> LpOutcome {
        // Phase 1 (only needed if artificials exist).
        if self.art_start < self.cols {
            if !self.iterate(true, true) {
                // Phase-1 objective is bounded below by 0; unbounded is
                // impossible, but guard anyway.
                return LpOutcome::Infeasible;
            }
            // -art_cost[cols] is the phase-1 optimum.
            if -self.art_cost[self.cols] > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive remaining artificials out of the basis where possible.
            for r in 0..self.a.len() {
                if self.basis[r] >= self.art_start {
                    if let Some(c) = (0..self.art_start).find(|&c| self.a[r][c].abs() > 1e-7) {
                        self.pivot(r, c);
                    }
                    // Otherwise the row is redundant (all-zero over real
                    // columns with zero RHS); it stays basic at level 0 and
                    // never pivots again.
                }
            }
        }
        // Phase 2.
        if !self.iterate(false, false) {
            return LpOutcome::Unbounded;
        }
        let mut values = vec![0.0; self.n_orig];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.n_orig {
                values[b] = self.a[r][self.cols];
            }
        }
        // Clean tiny negatives produced by roundoff.
        for v in &mut values {
            if *v < 0.0 && *v > -1e-7 {
                *v = 0.0;
            }
        }
        let objective = lp.objective_value(&values);
        LpOutcome::Optimal(LpSolution { objective, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6  => x=4, y=0, obj 12.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 3.0).set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        let sol = solve_lp(&lp);
        let s = sol.optimal().expect("optimal");
        assert_close(s.objective, 12.0);
        assert_close(s.values[0], 4.0);
        assert_close(s.values[1], 0.0);
    }

    #[test]
    fn interior_optimum() {
        // max x + y  s.t. x + 2y <= 4, 3x + y <= 6 => intersection (8/5, 6/5).
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0).set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
        let s = solve_lp(&lp);
        let s = s.optimal().expect("optimal");
        assert_close(s.objective, 8.0 / 5.0 + 6.0 / 5.0);
        assert_close(s.values[0], 8.0 / 5.0);
        assert_close(s.values[1], 6.0 / 5.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y  s.t. x + y >= 4, x >= 1 => x=4 (cheapest), y=0? Check:
        // cost 2 per unit x is cheaper than 3 per y, so x=4,y=0, obj 8.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 2.0).set_objective(1, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 1.0);
        let s = solve_lp(&lp);
        let s = s.optimal().expect("optimal");
        assert_close(s.objective, 8.0);
        assert_close(s.values[0], 4.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y  s.t. x + y = 3, x <= 2 => y=3-x; obj = x + 2(3-x) = 6-x
        // so x=0, y=3, obj 6.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0).set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
        lp.set_upper_bound(0, 2.0);
        let s = solve_lp(&lp);
        let s = s.optimal().expect("optimal");
        assert_close(s.objective, 6.0);
        assert_close(s.values[1], 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 5 and x <= 2.
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 2.0);
        assert!(matches!(solve_lp(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert!(matches!(solve_lp(&lp), LpOutcome::Unbounded));
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.set_upper_bound(0, 7.5);
        let s = solve_lp(&lp);
        let s = s.optimal().expect("optimal");
        assert_close(s.objective, 7.5);
    }

    #[test]
    fn negative_rhs_handled() {
        // x - y <= -1 with x,y >= 0: max x + y with y <= 3.
        // Feasible: y >= x + 1. Optimal: y=3, x=2, obj 5.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0).set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, -1.0);
        lp.set_upper_bound(1, 3.0);
        let s = solve_lp(&lp);
        let s = s.optimal().expect("optimal");
        assert_close(s.objective, 5.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0).set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, 0.0);
        let s = solve_lp(&lp);
        assert_close(s.optimal().expect("optimal").objective, 2.0);
    }

    #[test]
    fn zero_constraint_problem() {
        // No constraints, bounded only by an upper bound.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 2.0);
        lp.set_upper_bound(0, 3.0);
        let s = solve_lp(&lp);
        assert_close(s.optimal().expect("optimal").objective, 6.0);
    }

    #[test]
    fn solution_is_feasible_for_random_problems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..50 {
            let n = rng.gen_range(2..6);
            let m = rng.gen_range(1..5);
            let mut lp = LinearProgram::maximize(n);
            for i in 0..n {
                lp.set_objective(i, rng.gen_range(-2.0..3.0));
                lp.set_upper_bound(i, rng.gen_range(1.0..10.0));
            }
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> =
                    (0..n).map(|i| (i, rng.gen_range(0.0..2.0))).collect();
                lp.add_constraint(coeffs, Relation::Le, rng.gen_range(1.0..10.0));
            }
            match solve_lp(&lp) {
                LpOutcome::Optimal(s) => {
                    assert!(
                        lp.is_feasible(&s.values, 1e-6),
                        "trial {trial}: infeasible point"
                    );
                    // Objective must dominate the origin (always feasible here).
                    assert!(s.objective >= -1e-9, "trial {trial}");
                }
                other => panic!("trial {trial}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn stats_variant_counts_pivots_and_matches_plain_solve() {
        use crate::stats::SolveStats;
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 3.0).set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        let mut stats = SolveStats::new();
        let with = solve_lp_with_stats(&lp, &mut stats);
        let plain = solve_lp(&lp);
        assert_close(
            with.optimal().expect("optimal").objective,
            plain.optimal().expect("optimal").objective,
        );
        assert!(stats.pivots >= 1, "a non-trivial LP pivots at least once");
        // Solving again accumulates rather than resets.
        let before = stats.pivots;
        let _ = solve_lp_with_stats(&lp, &mut stats);
        assert_eq!(stats.pivots, 2 * before);
    }
}
