//! Solver effort counters.
//!
//! [`SolveStats`] is a plain accumulator the `*_with_stats` entry points
//! ([`crate::simplex::solve_lp_with_stats`],
//! [`crate::milp::solve_milp_with_stats`],
//! [`crate::gap::AssignmentProblem::solve_exact_with_stats`]) fill in as
//! they work: simplex pivots, branch-and-bound nodes, and the best proven
//! bound on the objective. Callers that do not care use the plain entry
//! points, which cost nothing extra. Keeping the stats as a std-only
//! struct (rather than an event sink) preserves this crate's
//! "depends on nothing but `std`" property; `vdx-broker` converts a
//! filled-in [`SolveStats`] into a journal event.

/// Work counters accumulated across one or more solves.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Simplex pivot operations performed (across every LP (re)solve).
    pub pivots: u64,
    /// Branch-and-bound nodes expanded (LP relaxations solved).
    pub bnb_nodes: u64,
    /// Best proven bound on the objective, in the problem's own sense
    /// (an upper bound when maximizing). `None` until a root relaxation
    /// has been solved — in particular, always `None` on pure-heuristic
    /// paths.
    pub best_bound: Option<f64>,
    /// Re-solves answered from the warm-start context's memoized
    /// solution (unchanged problem; no solver work at all).
    pub warm_hits: u64,
    /// Re-solves that ran the full cold pipeline (first solve, changed
    /// problem under [`crate::warm::WarmPolicy::Exact`], or a repair
    /// whose bound check failed and fell back).
    pub cold_solves: u64,
    /// Re-solves answered by the dual-repricing repair path
    /// ([`crate::warm::WarmPolicy::Repair`]) with the bound check passed.
    pub repairs: u64,
    /// Repair attempts whose optimality bound was violated, forcing the
    /// cold fallback (each such re-solve also counts one cold solve).
    pub repair_fallbacks: u64,
}

impl SolveStats {
    /// A zeroed accumulator.
    pub fn new() -> SolveStats {
        SolveStats::default()
    }

    /// Folds another accumulator into this one. Bounds are combined
    /// conservatively: with no way to know the objective sense here, the
    /// caller's bound wins only when this accumulator has none (merging is
    /// meant for summing *effort* across independent subproblems).
    pub fn merge(&mut self, other: &SolveStats) {
        self.pivots += other.pivots;
        self.bnb_nodes += other.bnb_nodes;
        if self.best_bound.is_none() {
            self.best_bound = other.best_bound;
        }
        self.warm_hits += other.warm_hits;
        self.cold_solves += other.cold_solves;
        self.repairs += other.repairs;
        self.repair_fallbacks += other.repair_fallbacks;
    }

    /// Relative optimality gap of an incumbent objective against
    /// [`SolveStats::best_bound`]: `|bound − incumbent| / max(|incumbent|, ε)`.
    /// `None` when no bound was established. A proven-optimal solve
    /// reports a gap of (numerically) zero.
    pub fn optimality_gap(&self, incumbent: f64) -> Option<f64> {
        self.best_bound.map(|bound| {
            let denom = incumbent.abs().max(1e-9);
            (bound - incumbent).abs() / denom
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_effort_and_keeps_first_bound() {
        let mut a = SolveStats {
            pivots: 3,
            bnb_nodes: 1,
            best_bound: None,
            warm_hits: 1,
            ..SolveStats::new()
        };
        let b = SolveStats {
            pivots: 4,
            bnb_nodes: 2,
            best_bound: Some(10.0),
            cold_solves: 2,
            repairs: 1,
            repair_fallbacks: 1,
            ..SolveStats::new()
        };
        a.merge(&b);
        assert_eq!(a.pivots, 7);
        assert_eq!(a.bnb_nodes, 3);
        assert_eq!(a.best_bound, Some(10.0));
        assert_eq!(a.warm_hits, 1);
        assert_eq!(a.cold_solves, 2);
        assert_eq!(a.repairs, 1);
        assert_eq!(a.repair_fallbacks, 1);
        let c = SolveStats {
            best_bound: Some(99.0),
            ..SolveStats::new()
        };
        a.merge(&c);
        assert_eq!(a.best_bound, Some(10.0), "existing bound is kept");
    }

    #[test]
    fn gap_is_relative_and_optional() {
        let none = SolveStats::new();
        assert_eq!(none.optimality_gap(5.0), None);
        let proven = SolveStats {
            best_bound: Some(8.0),
            ..SolveStats::new()
        };
        let gap = proven.optimality_gap(8.0).expect("bound set");
        assert!(gap < 1e-12);
        let loose = SolveStats {
            best_bound: Some(10.0),
            ..SolveStats::new()
        };
        let gap = loose.optimality_gap(8.0).expect("bound set");
        assert!((gap - 0.25).abs() < 1e-12);
    }
}
