//! Warm-started incremental re-solves for the round hot loop.
//!
//! Successive Decision Protocol rounds solve [`AssignmentProblem`]s that
//! differ by a few percent of demand — or not at all. A [`SolverContext`]
//! carried across rounds memoizes the previous `(problem, assignment)`
//! pair plus reusable scratch allocations, detects the delta against the
//! incoming problem ([`ProblemDelta`]), and answers each re-solve by the
//! cheapest sound path:
//!
//! * **warm hit** — the problem is bit-identical to the previous one;
//!   return the memoized assignment. The solver is a deterministic pure
//!   function, so this is exact by construction.
//! * **repair** ([`WarmPolicy::Repair`] only) — a small delta is patched
//!   by re-pricing the changed clients against bucket shadow prices
//!   estimated from the previous solution, then polished with
//!   [`AssignmentProblem::improve_local`]. The repaired answer is kept
//!   only when it is feasible and within `gap_tol` of a Lagrangian upper
//!   bound (valid for *any* non-negative prices), otherwise —
//! * **cold solve** — the full [`AssignmentProblem::solve_heuristic`]
//!   pipeline, exactly what a context-free caller would run.
//!
//! Under the default [`WarmPolicy::Exact`], every answer the context
//! returns is bit-identical to the cold path: unchanged problems
//! short-circuit (same bits, memoized), changed problems cold-solve.
//! Journal-feeding callers use `Exact`; `Repair` is for benchmarks and
//! solver-level experiments where a bounded optimality gap is acceptable.
//!
//! Delta detection is a pure function of the problem sequence and runs
//! the same way whether or not reuse is enabled
//! ([`SolverContext::set_reuse`]), so the `SolverResolve` journal events
//! derived from it are byte-identical between warm and cold runs.

use crate::gap::{Assignment, AssignmentProblem};
use crate::stats::SolveStats;
use vdx_units::Kbps;

/// Feasibility slack shared with [`AssignmentProblem::improve_local`]'s
/// fits-check.
const EPS: f64 = 1e-9;

/// How a [`SolverContext`] may reuse the previous round's solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmPolicy {
    /// Bit-exact reuse only: an unchanged problem returns the memoized
    /// assignment; any change at all runs the cold pipeline. Answers are
    /// guaranteed identical to context-free solves — the policy for
    /// every path that feeds journals or Table 3.
    Exact,
    /// Additionally repair small deltas by dual re-pricing of changed
    /// clients plus local search, falling back to a cold solve when the
    /// repair is infeasible or its optimality bound is violated.
    Repair {
        /// Repair only when at most this fraction of clients changed
        /// (larger deltas cold-solve directly).
        max_changed_fraction: f64,
        /// Accept a repair only when its objective is within this
        /// relative gap of the Lagrangian upper bound.
        gap_tol: f64,
    },
}

impl Default for WarmPolicy {
    fn default() -> WarmPolicy {
        WarmPolicy::Exact
    }
}

/// Which path answered one [`SolverContext::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveKind {
    /// Unchanged problem; memoized assignment returned.
    Warm,
    /// Full cold pipeline (first solve, `Exact` policy with a delta, or
    /// reuse disabled).
    Cold,
    /// Dual-repricing repair accepted within its bound.
    Repaired,
    /// Repair attempted but rejected; the answer is a cold solve.
    RepairFellBack,
}

/// The difference between two consecutive [`AssignmentProblem`]s — a
/// pure function of the two problems, independent of solve policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProblemDelta {
    /// Clients whose option list changed (all of them on a shape change
    /// or a first solve).
    pub changed_clients: u64,
    /// Buckets whose capacity changed (all of them on a shape change or
    /// a first solve).
    pub changed_buckets: u64,
    /// Client or bucket counts differ (or there was no previous
    /// problem), so per-index comparison is meaningless.
    pub shape_changed: bool,
}

impl ProblemDelta {
    /// Whether nothing changed — the warm short-circuit condition.
    pub fn is_empty(&self) -> bool {
        !self.shape_changed && self.changed_clients == 0 && self.changed_buckets == 0
    }

    /// Computes the delta between consecutive problems. Comparison is
    /// exact (bitwise on the underlying floats): rounding drift must
    /// register as a change.
    pub fn between(prev: &AssignmentProblem, next: &AssignmentProblem) -> ProblemDelta {
        if prev.options.len() != next.options.len()
            || prev.capacities.len() != next.capacities.len()
        {
            return ProblemDelta::everything(next);
        }
        let changed_clients = prev
            .options
            .iter()
            .zip(&next.options)
            .filter(|(a, b)| a != b)
            .count() as u64;
        let changed_buckets = prev
            .capacities
            .iter()
            .zip(&next.capacities)
            .filter(|(a, b)| a != b)
            .count() as u64;
        ProblemDelta {
            changed_clients,
            changed_buckets,
            shape_changed: false,
        }
    }

    /// The delta of a first solve: everything is new.
    pub fn everything(next: &AssignmentProblem) -> ProblemDelta {
        ProblemDelta {
            changed_clients: next.options.len() as u64,
            changed_buckets: next.capacities.len() as u64,
            shape_changed: true,
        }
    }
}

/// What one [`SolverContext::solve`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolveInfo {
    /// The path that produced the answer.
    pub kind: ResolveKind,
    /// The detected delta against the previous problem.
    pub delta: ProblemDelta,
}

/// Warm-start state carried across rounds: the previous
/// `(problem, assignment)` pair, reusable scratch buffers, and
/// cumulative [`SolveStats`] counters.
///
/// One context serves one sequential stream of problems (a shard); give
/// concurrent streams a context each.
#[derive(Debug, Clone, Default)]
pub struct SolverContext {
    policy: WarmPolicy,
    /// When false, every solve runs cold — but delta detection and the
    /// memoized-previous-problem bookkeeping still run identically, so
    /// the observable delta sequence matches a reuse-enabled context.
    reuse: bool,
    prev: Option<(AssignmentProblem, Assignment)>,
    /// Cumulative counters (warm/cold/repair outcomes plus any effort
    /// the underlying solves record).
    stats: SolveStats,
    /// Scratch: per-bucket shadow prices (repair path).
    scratch_prices: Vec<f64>,
    /// Scratch: per-bucket loads (repair path).
    scratch_loads: Vec<Kbps>,
    /// Scratch: indices of changed clients (repair path).
    scratch_changed: Vec<usize>,
}

impl SolverContext {
    /// A fresh context with the given reuse policy and reuse enabled.
    pub fn new(policy: WarmPolicy) -> SolverContext {
        SolverContext {
            policy,
            reuse: true,
            ..SolverContext::default()
        }
    }

    /// Enables or disables reuse. A disabled context cold-solves every
    /// round while keeping delta detection byte-identical to an enabled
    /// one — the `--solver-cold` reference path.
    pub fn set_reuse(&mut self, reuse: bool) {
        self.reuse = reuse;
    }

    /// Whether reuse is enabled.
    pub fn reuse(&self) -> bool {
        self.reuse
    }

    /// Cumulative counters since the context was created.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The delta the next [`SolverContext::solve`] call for `problem`
    /// would detect.
    pub fn peek_delta(&self, problem: &AssignmentProblem) -> ProblemDelta {
        match &self.prev {
            Some((prev, _)) => ProblemDelta::between(prev, problem),
            None => ProblemDelta::everything(problem),
        }
    }

    /// Solves `problem`, reusing the previous round's solution where the
    /// policy allows. Under [`WarmPolicy::Exact`] the returned assignment
    /// is bit-identical to `problem.solve_heuristic()`.
    pub fn solve(&mut self, problem: &AssignmentProblem) -> (Assignment, ResolveInfo) {
        let delta = self.peek_delta(problem);
        if self.reuse && delta.is_empty() {
            self.stats.warm_hits += 1;
            let assignment = self
                .prev
                .as_ref()
                .map(|(_, a)| a.clone())
                .expect("empty delta implies a previous solution");
            return (
                assignment,
                ResolveInfo {
                    kind: ResolveKind::Warm,
                    delta,
                },
            );
        }

        let (assignment, kind) = if self.reuse {
            match self.policy {
                WarmPolicy::Exact => (problem.solve_heuristic(), ResolveKind::Cold),
                WarmPolicy::Repair {
                    max_changed_fraction,
                    gap_tol,
                } => self.try_repair(problem, &delta, max_changed_fraction, gap_tol),
            }
        } else {
            (problem.solve_heuristic(), ResolveKind::Cold)
        };
        match kind {
            ResolveKind::Repaired => self.stats.repairs += 1,
            ResolveKind::RepairFellBack => {
                self.stats.repair_fallbacks += 1;
                self.stats.cold_solves += 1;
            }
            _ => self.stats.cold_solves += 1,
        }
        self.remember(problem, &assignment);
        (assignment, ResolveInfo { kind, delta })
    }

    /// Records an externally computed solution of `problem` as the
    /// warm-start state, counting it as one cold solve.
    ///
    /// For callers that answer some rounds outside this context (an exact
    /// MILP path, or a caller-level memoization layer as in
    /// `vdx-broker`) but still want delta detection to track the problem
    /// sequence. The recorded assignment must actually solve `problem`.
    pub fn observe(&mut self, problem: &AssignmentProblem, assignment: &Assignment) {
        self.stats.cold_solves += 1;
        self.remember(problem, assignment);
    }

    /// Counts a warm hit answered *outside* this context — a caller-level
    /// memoization that short-circuited before even building the
    /// [`AssignmentProblem`], so [`SolverContext::solve`] never saw it.
    pub fn note_warm_hit(&mut self) {
        self.stats.warm_hits += 1;
    }

    /// Stores `(problem, assignment)` as the warm-start state, reusing
    /// the previous buffers' allocations where shapes allow.
    fn remember(&mut self, problem: &AssignmentProblem, assignment: &Assignment) {
        match &mut self.prev {
            Some((p, a)) => {
                p.clone_from(problem);
                a.clone_from(assignment);
            }
            None => self.prev = Some((problem.clone(), assignment.clone())),
        }
    }

    /// The repair path: re-price changed clients against shadow prices
    /// estimated from the previous solution, polish locally, and keep
    /// the result only when feasible and within `gap_tol` of the
    /// Lagrangian upper bound.
    fn try_repair(
        &mut self,
        problem: &AssignmentProblem,
        delta: &ProblemDelta,
        max_changed_fraction: f64,
        gap_tol: f64,
    ) -> (Assignment, ResolveKind) {
        let n = problem.num_clients();
        let eligible = !delta.shape_changed
            && n > 0
            && (delta.changed_clients as f64) <= max_changed_fraction * n as f64;
        if !eligible {
            return (problem.solve_heuristic(), ResolveKind::Cold);
        }
        let (prev_problem, prev_assignment) = self
            .prev
            .as_ref()
            .expect("shape comparison implies a previous solution");

        // Shadow prices λ_b ≥ 0 from the *previous* solution: slack
        // buckets price at zero (complementary slackness); a tight
        // bucket prices at the cheapest eviction among its residents —
        // the smallest per-unit-load value a client would give up by
        // moving to its best alternative.
        self.scratch_prices.clear();
        self.scratch_prices.resize(problem.capacities.len(), 0.0);
        self.scratch_loads.clear();
        self.scratch_loads
            .resize(prev_problem.capacities.len(), Kbps::ZERO);
        for (c, &o) in prev_assignment.choice.iter().enumerate() {
            let opt = prev_problem.options[c][o];
            self.scratch_loads[opt.bucket] += opt.load;
        }
        for (c, &o) in prev_assignment.choice.iter().enumerate() {
            let chosen = prev_problem.options[c][o];
            let b = chosen.bucket;
            let tight = self.scratch_loads[b].as_f64() + EPS >= prev_problem.capacities[b].as_f64();
            if !tight {
                continue;
            }
            let best_alt = prev_problem.options[c]
                .iter()
                .enumerate()
                .filter(|&(i, opt)| i != o && opt.bucket != b)
                .map(|(_, opt)| opt.value)
                .fold(f64::NEG_INFINITY, f64::max);
            if !best_alt.is_finite() {
                continue; // captive client: no eviction possible
            }
            let eviction = (chosen.value - best_alt) / chosen.load.as_f64().max(1e-12);
            let eviction = eviction.max(0.0);
            let price = &mut self.scratch_prices[b];
            if *price == 0.0 || eviction < *price {
                *price = eviction;
            }
        }

        // Patch: keep the previous choice, re-pick changed clients by
        // reduced value (value − λ_b · load); deterministic tie-break on
        // option index via strict `>`.
        let mut choice = prev_assignment.choice.clone();
        self.scratch_changed.clear();
        for (c, (prev_opts, next_opts)) in prev_problem
            .options
            .iter()
            .zip(&problem.options)
            .enumerate()
        {
            if prev_opts != next_opts {
                self.scratch_changed.push(c);
            }
        }
        for &c in &self.scratch_changed {
            let mut best = 0usize;
            let mut best_reduced = f64::NEG_INFINITY;
            for (i, opt) in problem.options[c].iter().enumerate() {
                let reduced = opt.value - self.scratch_prices[opt.bucket] * opt.load.as_f64();
                if reduced > best_reduced {
                    best_reduced = reduced;
                    best = i;
                }
            }
            choice[c] = best;
        }
        let objective = problem.value_of(&choice);
        let repaired = problem.improve_local(Assignment { choice, objective }, 8);

        // Lagrangian upper bound U(λ): valid for any λ ≥ 0 because
        // relaxing capacity into the objective can only raise the
        // optimum — so a repair within gap_tol of U is within gap_tol
        // of the true optimum too.
        let mut bound: f64 = 0.0;
        for opts in &problem.options {
            let best = opts
                .iter()
                .map(|o| o.value - self.scratch_prices[o.bucket] * o.load.as_f64())
                .fold(f64::NEG_INFINITY, f64::max);
            bound += best;
        }
        for (b, cap) in problem.capacities.iter().enumerate() {
            bound += self.scratch_prices[b] * cap.as_f64();
        }
        let feasible = problem.respects_capacities(&repaired.choice, Kbps::new(EPS));
        let gap = (bound - repaired.objective) / bound.abs().max(1e-9);
        if feasible && gap <= gap_tol {
            (repaired, ResolveKind::Repaired)
        } else {
            (problem.solve_heuristic(), ResolveKind::RepairFellBack)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::CandidateOption;

    fn opt(bucket: usize, value: f64, load: f64) -> CandidateOption {
        CandidateOption {
            bucket,
            value,
            load: Kbps::new(load),
        }
    }

    fn caps(v: &[f64]) -> Vec<Kbps> {
        v.iter().map(|&c| Kbps::new(c)).collect()
    }

    fn sample_problem() -> AssignmentProblem {
        let mut p = AssignmentProblem::new(caps(&[10.0, 10.0]));
        p.add_client(vec![opt(0, 5.0, 4.0), opt(1, 3.0, 4.0)]);
        p.add_client(vec![opt(0, 5.0, 4.0), opt(1, 3.0, 4.0)]);
        p.add_client(vec![opt(0, 2.0, 4.0), opt(1, 4.0, 4.0)]);
        p
    }

    #[test]
    fn unchanged_problem_short_circuits_to_the_memoized_assignment() {
        let mut ctx = SolverContext::new(WarmPolicy::Exact);
        let p = sample_problem();
        let (first, info) = ctx.solve(&p);
        assert_eq!(info.kind, ResolveKind::Cold);
        assert!(info.delta.shape_changed, "first solve: everything changed");
        let (second, info) = ctx.solve(&p.clone());
        assert_eq!(info.kind, ResolveKind::Warm);
        assert!(info.delta.is_empty());
        assert_eq!(second, first);
        assert_eq!(second, p.solve_heuristic());
        assert_eq!(ctx.stats().warm_hits, 1);
        assert_eq!(ctx.stats().cold_solves, 1);
    }

    #[test]
    fn exact_policy_cold_solves_any_change() {
        let mut ctx = SolverContext::new(WarmPolicy::Exact);
        let mut p = sample_problem();
        ctx.solve(&p);
        p.options[1][0].value = 6.5;
        let (a, info) = ctx.solve(&p);
        assert_eq!(info.kind, ResolveKind::Cold);
        assert_eq!(info.delta.changed_clients, 1);
        assert_eq!(info.delta.changed_buckets, 0);
        assert_eq!(a, p.solve_heuristic(), "bit-identical to the cold path");
    }

    #[test]
    fn disabled_reuse_always_cold_solves_with_identical_deltas() {
        let mut warm = SolverContext::new(WarmPolicy::Exact);
        let mut cold = SolverContext::new(WarmPolicy::Exact);
        cold.set_reuse(false);
        assert!(!cold.reuse());
        let p = sample_problem();
        for _ in 0..3 {
            let (wa, wi) = warm.solve(&p);
            let (ca, ci) = cold.solve(&p);
            assert_eq!(wa, ca, "answers agree");
            assert_eq!(wi.delta, ci.delta, "delta sequences agree");
        }
        assert_eq!(cold.stats().cold_solves, 3);
        assert_eq!(cold.stats().warm_hits, 0);
        assert_eq!(warm.stats().warm_hits, 2);
    }

    #[test]
    fn repair_honours_its_bound_or_falls_back() {
        let mut ctx = SolverContext::new(WarmPolicy::Repair {
            max_changed_fraction: 0.5,
            gap_tol: 0.05,
        });
        let mut p = sample_problem();
        ctx.solve(&p);
        // A one-client nudge: the repair path must produce a feasible
        // answer no worse than 5 % below the Lagrangian bound, or fall
        // back to the cold answer — either way feasibility holds.
        p.options[2][1].value = 4.25;
        let (a, info) = ctx.solve(&p);
        assert!(matches!(
            info.kind,
            ResolveKind::Repaired | ResolveKind::RepairFellBack
        ));
        assert!(p.respects_capacities(&a.choice, Kbps::new(1e-9)));
        let cold = p.solve_heuristic();
        assert!(
            a.objective >= cold.objective * 0.95 - 1e-9,
            "repair {} vs cold {}",
            a.objective,
            cold.objective
        );
    }

    #[test]
    fn repair_skips_large_deltas() {
        let mut ctx = SolverContext::new(WarmPolicy::Repair {
            max_changed_fraction: 0.2,
            gap_tol: 0.05,
        });
        let mut p = sample_problem();
        ctx.solve(&p);
        for c in 0..p.num_clients() {
            p.options[c][0].value += 1.0;
        }
        let (_, info) = ctx.solve(&p);
        assert_eq!(
            info.kind,
            ResolveKind::Cold,
            "3/3 clients changed > 20 % threshold"
        );
    }

    #[test]
    fn shape_changes_are_everything_deltas() {
        let mut ctx = SolverContext::new(WarmPolicy::Exact);
        let p = sample_problem();
        ctx.solve(&p);
        let mut bigger = p.clone();
        bigger.add_client(vec![opt(0, 1.0, 1.0)]);
        let delta = ctx.peek_delta(&bigger);
        assert!(delta.shape_changed);
        assert_eq!(delta.changed_clients, 4);
        assert_eq!(delta.changed_buckets, 2);
    }
}
