//! Property tests for the optimization substrate: the solvers must agree
//! with brute force and with each other on everything small enough to
//! enumerate, and never emit infeasible answers.

use proptest::prelude::*;
use vdx_solver::flow::solve_unit_assignment;
use vdx_solver::{
    solve_lp, solve_milp, AssignmentProblem, CandidateOption, LinearProgram, LpOutcome, MilpConfig,
    MilpOutcome, ProblemDelta, Relation, SolverContext, WarmPolicy,
};
use vdx_units::Kbps;

/// Brute-force optimum of a binary knapsack-ish MILP with ≤ 12 variables.
fn brute_force_binary(lp: &LinearProgram) -> Option<f64> {
    let n = lp.num_vars;
    assert!(n <= 12);
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        if lp.is_feasible(&x, 1e-9) {
            let v = lp.objective_value(&x);
            best = Some(match best {
                None => v,
                Some(b) => {
                    if lp.maximize {
                        b.max(v)
                    } else {
                        b.min(v)
                    }
                }
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn milp_matches_brute_force_on_binary_knapsacks(
        values in proptest::collection::vec(0.0f64..10.0, 3..7),
        weights in proptest::collection::vec(0.5f64..5.0, 3..7),
        capacity in 2.0f64..10.0,
    ) {
        let n = values.len().min(weights.len());
        let mut lp = LinearProgram::maximize(n);
        for i in 0..n {
            lp.set_objective(i, values[i]);
            lp.set_upper_bound(i, 1.0);
        }
        lp.add_constraint(
            (0..n).map(|i| (i, weights[i])).collect(),
            Relation::Le,
            capacity,
        );
        let vars: Vec<usize> = (0..n).collect();
        let milp = solve_milp(&lp, &vars, &MilpConfig::default());
        let brute = brute_force_binary(&lp).expect("x = 0 is always feasible");
        match milp {
            MilpOutcome::Solved { objective, values, proven_optimal } => {
                prop_assert!(proven_optimal);
                prop_assert!((objective - brute).abs() < 1e-6,
                    "milp {objective} vs brute {brute}");
                prop_assert!(lp.is_feasible(&values, 1e-6));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn lp_relaxation_bounds_milp(
        values in proptest::collection::vec(-3.0f64..8.0, 3..6),
        weights in proptest::collection::vec(0.5f64..4.0, 3..6),
        capacity in 1.0f64..8.0,
    ) {
        let n = values.len().min(weights.len());
        let mut lp = LinearProgram::maximize(n);
        for i in 0..n {
            lp.set_objective(i, values[i]);
            lp.set_upper_bound(i, 1.0);
        }
        lp.add_constraint((0..n).map(|i| (i, weights[i])).collect(), Relation::Le, capacity);
        let relax = match solve_lp(&lp) {
            LpOutcome::Optimal(s) => s.objective,
            other => { prop_assert!(false, "lp failed: {:?}", other); unreachable!() }
        };
        let vars: Vec<usize> = (0..n).collect();
        if let MilpOutcome::Solved { objective, .. } =
            solve_milp(&lp, &vars, &MilpConfig::default())
        {
            prop_assert!(objective <= relax + 1e-6,
                "integer optimum {objective} above relaxation {relax}");
        }
    }

    #[test]
    fn ge_and_eq_constraints_are_honoured(
        demand in 1.0f64..10.0,
        c0 in 0.5f64..5.0,
        c1 in 0.5f64..5.0,
    ) {
        // min c0 x + c1 y  s.t. x + y = demand: optimum puts all mass on
        // the cheaper variable.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, c0).set_objective(1, c1);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, demand);
        match solve_lp(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(&s.values, 1e-6));
                let expect = c0.min(c1) * demand;
                prop_assert!((s.objective - expect).abs() < 1e-6,
                    "got {} expected {}", s.objective, expect);
            }
            other => prop_assert!(false, "{:?}", other),
        }
    }

    #[test]
    fn flow_and_milp_agree_on_unit_assignments(
        values in proptest::collection::vec(0.0f64..9.0, 6),
        cap0 in 1i64..3,
        cap1 in 1i64..3,
    ) {
        // 3 clients x 2 buckets.
        let buckets = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        let vals: Vec<Vec<f64>> = values.chunks(2).map(|c| c.to_vec()).collect();
        let caps = vec![cap0, cap1];
        let flow = solve_unit_assignment(&buckets, &vals, &caps);

        let mut gap = AssignmentProblem::new(vec![Kbps::new(cap0 as f64), Kbps::new(cap1 as f64)]);
        for v in &vals {
            gap.add_client(
                v.iter()
                    .enumerate()
                    .map(|(b, &value)| CandidateOption { bucket: b, value, load: Kbps::new(1.0) })
                    .collect(),
            );
        }
        let milp = gap.solve_exact(&MilpConfig::default());
        match (flow, milp) {
            (Some((_, fobj)), Some(m)) => {
                prop_assert!((fobj - m.objective).abs() < 1e-6,
                    "flow {fobj} vs milp {}", m.objective);
            }
            (None, None) => {}
            (f, m) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}",
                f.map(|x| x.1), m.map(|x| x.objective)),
        }
    }

    #[test]
    fn greedy_assignment_is_complete_and_deterministic(
        caps in proptest::collection::vec(1.0f64..20.0, 1..5),
        loads in proptest::collection::vec(0.5f64..5.0, 1..10),
        seed in any::<u32>(),
    ) {
        let mut p = AssignmentProblem::new(caps.iter().map(|&c| Kbps::new(c)).collect());
        for (i, load) in loads.iter().enumerate() {
            let options: Vec<CandidateOption> = (0..caps.len())
                .map(|b| CandidateOption {
                    bucket: b,
                    value: ((seed as usize + i * 3 + b * 7) % 11) as f64,
                    load: Kbps::new(*load),
                })
                .collect();
            p.add_client(options);
        }
        let a1 = p.solve_greedy();
        let a2 = p.solve_greedy();
        prop_assert_eq!(&a1.choice, &a2.choice, "deterministic");
        prop_assert_eq!(a1.choice.len(), loads.len(), "complete");
        // Objective accounting is self-consistent.
        prop_assert!((a1.objective - p.value_of(&a1.choice)).abs() < 1e-9);
        // Local search never hurts.
        let improved = p.improve_local(a1.clone(), 4);
        prop_assert!(improved.objective >= a1.objective - 1e-9);
    }

    /// On feasible instances (every bucket alone can hold the whole
    /// workload) no solver may oversubscribe, and the demand placed by a
    /// choice vector must land on buckets in full — the conservation
    /// invariant the `strict-invariants` feature also checks inside
    /// `bucket_loads` via `debug_assert!`.
    #[test]
    fn solvers_conserve_demand_and_never_oversubscribe(
        n_buckets in 2usize..5,
        loads in proptest::collection::vec(0.5f64..4.0, 1..8),
        headroom in 0.0f64..10.0,
        seed in any::<u32>(),
    ) {
        let offered: f64 = loads.iter().sum();
        let caps: Vec<Kbps> = (0..n_buckets)
            .map(|_| Kbps::new(offered + headroom))
            .collect();
        let mut p = AssignmentProblem::new(caps);
        for (i, load) in loads.iter().enumerate() {
            p.add_client(
                (0..n_buckets)
                    .map(|b| CandidateOption {
                        bucket: b,
                        value: ((seed as usize + i * 5 + b * 3) % 13) as f64,
                        load: Kbps::new(*load),
                    })
                    .collect(),
            );
        }
        let tol = Kbps::new(1e-9);
        for a in [p.solve_greedy(), p.solve_heuristic()] {
            prop_assert!(p.respects_capacities(&a.choice, tol));
            let landed: f64 = p.bucket_loads(&a.choice).iter().map(|l| l.as_f64()).sum();
            prop_assert!((landed - offered).abs() <= 1e-6 * offered.max(1.0),
                "placed {offered} but buckets hold {landed}");
        }
        if let Some(exact) = p.solve_exact(&MilpConfig::default()) {
            prop_assert!(p.respects_capacities(&exact.choice, tol));
        }
    }

    /// The warm-start tentpole's core contract: under `WarmPolicy::Exact`
    /// a context-driven re-solve sequence returns assignments identical
    /// to context-free cold solves, for any random demand delta between
    /// consecutive rounds — and the detected delta counts exactly the
    /// perturbed clients.
    #[test]
    fn warm_context_equals_cold_solves_across_demand_deltas(
        caps in proptest::collection::vec(2.0f64..20.0, 2..5),
        loads in proptest::collection::vec(0.5f64..4.0, 2..10),
        seed in any::<u32>(),
        perturb_mask in any::<u16>(),
        nudge in 0.25f64..3.0,
    ) {
        let build = |mask: u16| {
            let mut p = AssignmentProblem::new(caps.iter().map(|&c| Kbps::new(c)).collect());
            for (i, load) in loads.iter().enumerate() {
                let shift = if (mask >> (i % 16)) & 1 == 1 { nudge } else { 0.0 };
                p.add_client(
                    (0..caps.len())
                        .map(|b| CandidateOption {
                            bucket: b,
                            value: ((seed as usize + i * 3 + b * 7) % 11) as f64 + shift,
                            load: Kbps::new(*load),
                        })
                        .collect(),
                );
            }
            p
        };
        let base = build(0);
        let moved = build(perturb_mask);
        let mut ctx = SolverContext::new(WarmPolicy::Exact);
        // base (cold), moved (delta), moved again (warm hit), back (delta).
        for p in [&base, &moved, &moved, &base] {
            let (got, _info) = ctx.solve(p);
            let cold = p.solve_heuristic();
            prop_assert_eq!(&got.choice, &cold.choice, "identical assignment");
            prop_assert!((got.objective - cold.objective).abs() <= 1e-9);
        }
        let expected = (0..loads.len())
            .filter(|i| (perturb_mask >> (i % 16)) & 1 == 1)
            .count() as u64;
        let delta = ProblemDelta::between(&base, &moved);
        prop_assert_eq!(delta.changed_clients, expected);
        prop_assert_eq!(delta.changed_buckets, 0);
        prop_assert!(!delta.shape_changed);
    }

    /// The repair path's contract: whatever `solve` answers under
    /// `WarmPolicy::Repair` — memoized, repaired, or fallen back — the
    /// assignment is feasible and its objective within `gap_tol` of the
    /// cold answer (an accepted repair sits within `gap_tol` of a
    /// Lagrangian upper bound that dominates the cold objective).
    #[test]
    fn repair_answers_are_feasible_and_within_tolerance(
        n_buckets in 2usize..5,
        loads in proptest::collection::vec(0.5f64..4.0, 2..10),
        headroom in 0.0f64..6.0,
        seed in any::<u32>(),
        perturb_mask in any::<u16>(),
        nudge in 0.25f64..3.0,
    ) {
        const GAP_TOL: f64 = 0.05;
        let offered: f64 = loads.iter().sum();
        let build = |mask: u16| {
            // Feasible by construction (any bucket can hold everything),
            // like the conservation test above — so every answer path,
            // repair included, must stay within capacity.
            let caps: Vec<Kbps> = (0..n_buckets)
                .map(|b| Kbps::new(offered + headroom + b as f64))
                .collect();
            let mut p = AssignmentProblem::new(caps);
            for (i, load) in loads.iter().enumerate() {
                let shift = if (mask >> (i % 16)) & 1 == 1 { nudge } else { 0.0 };
                p.add_client(
                    (0..n_buckets)
                        .map(|b| CandidateOption {
                            bucket: b,
                            value: ((seed as usize + i * 5 + b * 3) % 13) as f64 + shift,
                            load: Kbps::new(*load),
                        })
                        .collect(),
                );
            }
            p
        };
        let base = build(0);
        let moved = build(perturb_mask);
        let mut ctx = SolverContext::new(WarmPolicy::Repair {
            max_changed_fraction: 1.0,
            gap_tol: GAP_TOL,
        });
        ctx.solve(&base);
        let (got, _info) = ctx.solve(&moved);
        prop_assert!(moved.respects_capacities(&got.choice, Kbps::new(1e-9)));
        let cold = moved.solve_heuristic();
        prop_assert!(
            got.objective >= cold.objective * (1.0 - GAP_TOL) - 1e-6,
            "repair {} vs cold {}", got.objective, cold.objective
        );
    }
}
