//! Broker session trace: records and synthesis.
//!
//! The real trace (§3.1 of the paper) covers "roughly an hour of off-peak
//! requests (33.4K total) for one content provider (a music video streaming
//! website)" with "an entry for each client session containing the request
//! arrival time, which video was requested, the average bitrate, session
//! duration, the client city and AS, the initial CDN contacted, and the
//! current CDN delivering the video". [`SessionRecord`] carries exactly
//! those fields (plus the full mid-stream switch history, which the paper's
//! Fig 4 statistic implies the real trace also has).
//!
//! The generator reproduces each published property; the module tests hold
//! it to them:
//!
//! | Property (paper) | Mechanism here |
//! |---|---|
//! | Zipf video popularity | [`crate::stats::Zipf`] over video ids |
//! | Power-law city sizes | city choice ∝ `population_weight` (Pareto) |
//! | ~78 % abandon almost immediately | abandon flag; 1–10 s durations |
//! | Bimodal bitrate (lowest/highest peaks) | three-component mixture over the ladder |
//! | ~40 % of active sessions moved, varying ~20–60 % (Fig 4) | sinusoidal move probability over arrival time, applied to non-abandoned sessions |
//! | CDN A favoured in small cities, B/C flat (Fig 5) | A's weight gains a small-city boost |
//! | Strong per-country CDN skew (Fig 7) | per-country preference weights with heavy mass near zero |

use crate::stats::{WeightedIndex, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vdx_geo::{CityId, CountryId, World};

/// Identifier of a session within a [`BrokerTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u32);

/// The CDNs visible in the broker trace. The paper anonymises them as "A"
/// (many locations), "B" and "C" (few large locations), and aggregates the
/// rest as "other".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CdnLabel {
    /// Highly distributed CDN.
    A,
    /// Centralized CDN.
    B,
    /// Centralized CDN.
    C,
    /// All remaining (smaller) CDNs.
    Other,
}

impl CdnLabel {
    /// All labels in display order.
    pub const ALL: [CdnLabel; 4] = [CdnLabel::A, CdnLabel::B, CdnLabel::C, CdnLabel::Other];

    /// Index into per-label arrays.
    pub fn index(&self) -> usize {
        match self {
            CdnLabel::A => 0,
            CdnLabel::B => 1,
            CdnLabel::C => 2,
            CdnLabel::Other => 3,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CdnLabel::A => "CDN A",
            CdnLabel::B => "CDN B",
            CdnLabel::C => "CDN C",
            CdnLabel::Other => "other",
        }
    }
}

/// One client video session, mirroring the fields of the paper's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Session id (index into the trace).
    pub id: SessionId,
    /// Request arrival time, seconds from trace start.
    pub arrival_s: f64,
    /// Requested video id (Zipf-popular).
    pub video: u32,
    /// Average bitrate of the session in kbit/s.
    pub bitrate_kbps: u32,
    /// Session duration in seconds.
    pub duration_s: f64,
    /// Client city.
    pub city: CityId,
    /// Client autonomous system number (synthetic).
    pub asn: u32,
    /// CDN the broker first assigned the client to.
    pub initial_cdn: CdnLabel,
    /// Mid-stream CDN switches as `(absolute time, new CDN)`, ascending.
    pub switches: Vec<(f64, CdnLabel)>,
}

impl SessionRecord {
    /// The CDN currently delivering the video (after all switches).
    pub fn current_cdn(&self) -> CdnLabel {
        self.switches
            .last()
            .map(|(_, c)| *c)
            .unwrap_or(self.initial_cdn)
    }

    /// Session end time.
    pub fn end_s(&self) -> f64 {
        self.arrival_s + self.duration_s
    }

    /// Whether the session overlaps the interval `[t0, t1)`.
    pub fn active_in(&self, t0: f64, t1: f64) -> bool {
        self.arrival_s < t1 && self.end_s() > t0
    }

    /// Whether the broker ever moved this session between CDNs.
    pub fn was_moved(&self) -> bool {
        !self.switches.is_empty()
    }

    /// Whether the client abandoned almost immediately (the paper counts
    /// ~78 % of sessions in this class).
    pub fn abandoned(&self, threshold_s: f64) -> bool {
        self.duration_s < threshold_s
    }

    /// Bits delivered over the session's lifetime.
    pub fn bits(&self) -> f64 {
        self.bitrate_kbps as f64 * 1000.0 * self.duration_s
    }
}

/// Configuration for [`BrokerTrace::generate`]. Defaults reproduce the
/// paper's trace scale and statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerTraceConfig {
    /// Number of sessions (paper: 33.4 K).
    pub sessions: usize,
    /// Trace length in seconds (paper: "roughly an hour").
    pub trace_duration_s: f64,
    /// Size of the video catalogue.
    pub videos: usize,
    /// Zipf exponent for video popularity.
    pub zipf_exponent: f64,
    /// Fraction of sessions that abandon almost immediately (paper: ~78 %).
    pub abandon_fraction: f64,
    /// Abandoned sessions last `1..abandon_max_s` seconds.
    pub abandon_max_s: f64,
    /// Median duration (seconds) of watched (non-abandoned) sessions.
    pub watch_median_s: f64,
    /// Lognormal sigma of watched durations.
    pub watch_sigma: f64,
    /// The bitrate ladder in kbit/s (music-video rungs).
    pub bitrate_ladder_kbps: Vec<u32>,
    /// Probability mass on the lowest rung (bimodal peak #1).
    pub bitrate_low_peak: f64,
    /// Probability mass on the highest rung (bimodal peak #2).
    pub bitrate_high_peak: f64,
    /// Mean mid-stream move probability for non-abandoned sessions
    /// (Fig 4 average: ~0.4).
    pub move_base: f64,
    /// Amplitude of the sinusoidal variation of the move probability
    /// (Fig 4 range: ~0.2–0.6).
    pub move_amplitude: f64,
    /// Period of the variation, seconds.
    pub move_period_s: f64,
    /// Small-city boost for CDN A's selection weight (Fig 5): A's weight is
    /// multiplied by `1 + boost / (1 + population_weight)`.
    pub cdn_a_small_city_boost: f64,
}

impl Default for BrokerTraceConfig {
    fn default() -> Self {
        BrokerTraceConfig {
            sessions: 33_400,
            trace_duration_s: 3_600.0,
            videos: 4_000,
            zipf_exponent: 0.9,
            abandon_fraction: 0.78,
            abandon_max_s: 10.0,
            watch_median_s: 180.0,
            watch_sigma: 0.8,
            bitrate_ladder_kbps: vec![235, 375, 560, 750, 1050, 1750, 2350, 3000],
            bitrate_low_peak: 0.35,
            bitrate_high_peak: 0.35,
            move_base: 0.40,
            move_amplitude: 0.28,
            move_period_s: 1_500.0,
            cdn_a_small_city_boost: 6.0,
        }
    }
}

impl BrokerTraceConfig {
    /// A small configuration for fast tests and doc examples.
    pub fn small() -> Self {
        BrokerTraceConfig {
            sessions: 2_000,
            videos: 400,
            ..Default::default()
        }
    }
}

/// A synthetic broker trace over a [`World`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerTrace {
    config: BrokerTraceConfig,
    sessions: Vec<SessionRecord>,
}

/// Per-country CDN preference weights (see module docs).
struct CountryPrefs {
    /// Base weights for `[A, B, C, Other]` before the city-size boost.
    base: [f64; 4],
}

impl BrokerTrace {
    /// Generates a trace deterministically from the world, config and seed.
    ///
    /// # Panics
    /// Panics if `config.sessions == 0`, the ladder is empty, or the peak
    /// masses exceed 1.
    pub fn generate(world: &World, config: &BrokerTraceConfig, seed: u64) -> BrokerTrace {
        assert!(config.sessions > 0, "trace needs sessions");
        assert!(
            !config.bitrate_ladder_kbps.is_empty(),
            "bitrate ladder empty"
        );
        assert!(
            config.bitrate_low_peak + config.bitrate_high_peak <= 1.0,
            "bitrate peak masses exceed 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        let zipf = Zipf::new(config.videos.max(1), config.zipf_exponent);
        let city_weights: Vec<f64> = world.cities().iter().map(|c| c.population_weight).collect();
        let city_picker = WeightedIndex::new(&city_weights);
        let prefs = country_prefs(world, &mut rng);

        let mut sessions = Vec::with_capacity(config.sessions);
        for i in 0..config.sessions {
            let id = SessionId(i as u32);
            let arrival = rng.gen_range(0.0..config.trace_duration_s);
            let video = zipf.sample(&mut rng) as u32;
            let city_idx = city_picker.sample(&mut rng);
            let city = world.cities()[city_idx].id;
            let country = world.cities()[city_idx].country;

            let bitrate = sample_bitrate(config, &mut rng);
            let abandoned = rng.gen_bool(config.abandon_fraction);
            let duration = if abandoned {
                rng.gen_range(1.0..config.abandon_max_s)
            } else {
                sample_lognormal(&mut rng, config.watch_median_s.ln(), config.watch_sigma)
            };

            let pop = world.cities()[city_idx].population_weight;
            let initial_cdn = sample_cdn(&prefs[country.index()], pop, config, &mut rng, None);

            let mut switches = Vec::new();
            if !abandoned && duration > 30.0 {
                let p = move_probability(config, arrival);
                if rng.gen_bool(p) {
                    let t = arrival + rng.gen_range(5.0..duration.min(1_800.0));
                    let next = sample_cdn(
                        &prefs[country.index()],
                        pop,
                        config,
                        &mut rng,
                        Some(initial_cdn),
                    );
                    switches.push((t, next));
                    // Long sessions occasionally move a second time.
                    if duration > 600.0 && rng.gen_bool(p / 2.0) {
                        let t2 = t + rng.gen_range(5.0..(duration - (t - arrival)).max(6.0));
                        let next2 =
                            sample_cdn(&prefs[country.index()], pop, config, &mut rng, Some(next));
                        switches.push((t2, next2));
                    }
                }
            }

            sessions.push(SessionRecord {
                id,
                arrival_s: arrival,
                video,
                bitrate_kbps: bitrate,
                duration_s: duration,
                city,
                asn: 64_512 + (city.0 % 1_024) * 4 + rng.gen_range(0..4),
                initial_cdn,
                switches,
            });
        }
        sessions.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        for (i, s) in sessions.iter_mut().enumerate() {
            s.id = SessionId(i as u32);
        }
        BrokerTrace {
            config: config.clone(),
            sessions,
        }
    }

    /// The sessions, ordered by arrival time.
    pub fn sessions(&self) -> &[SessionRecord] {
        &self.sessions
    }

    /// Generation configuration.
    pub fn config(&self) -> &BrokerTraceConfig {
        &self.config
    }

    /// Builds a trace directly from records (e.g. loaded from disk).
    pub fn from_sessions(config: BrokerTraceConfig, sessions: Vec<SessionRecord>) -> BrokerTrace {
        BrokerTrace { config, sessions }
    }

    /// Request counts per city, descending by count.
    pub fn requests_per_city(&self) -> Vec<(CityId, u64)> {
        let mut counts: BTreeMap<CityId, u64> = BTreeMap::new();
        for s in &self.sessions {
            *counts.entry(s.city).or_insert(0) += 1;
        }
        let mut v: Vec<(CityId, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// For each city: `(requests, usage share per CdnLabel)` based on the
    /// session's *current* CDN — the Fig 5 data set.
    pub fn usage_by_city(&self) -> Vec<(CityId, u64, [f64; 4])> {
        let mut counts: BTreeMap<CityId, [u64; 5]> = BTreeMap::new();
        for s in &self.sessions {
            let e = counts.entry(s.city).or_insert([0; 5]);
            e[s.current_cdn().index()] += 1;
            e[4] += 1;
        }
        counts
            .into_iter()
            .map(|(city, c)| {
                let total = c[4] as f64;
                (city, c[4], [0, 1, 2, 3].map(|i| c[i] as f64 / total))
            })
            .collect()
    }

    /// For each country: `(requests, usage share per CdnLabel)` — the
    /// Fig 7 data set.
    pub fn usage_by_country(&self, world: &World) -> Vec<(CountryId, u64, [f64; 4])> {
        let mut counts: BTreeMap<CountryId, [u64; 5]> = BTreeMap::new();
        for s in &self.sessions {
            let country = world.city(s.city).country;
            let e = counts.entry(country).or_insert([0; 5]);
            e[s.current_cdn().index()] += 1;
            e[4] += 1;
        }
        counts
            .into_iter()
            .map(|(country, c)| {
                let total = c[4] as f64;
                (country, c[4], [0, 1, 2, 3].map(|i| c[i] as f64 / total))
            })
            .collect()
    }

    /// Fig 4's time series: for consecutive `bin_s` intervals, the
    /// percentage of sessions active in the bin that were moved between
    /// CDNs at some point in their lifetime. Bins with no active sessions
    /// report 0.
    pub fn moved_sessions_series(&self, bin_s: f64) -> Vec<(f64, f64)> {
        assert!(bin_s > 0.0, "bin width must be positive");
        let bins = (self.config.trace_duration_s / bin_s).ceil() as usize;
        let mut series = Vec::with_capacity(bins);
        for b in 0..bins {
            let t0 = b as f64 * bin_s;
            let t1 = t0 + bin_s;
            let mut active = 0u64;
            let mut moved = 0u64;
            for s in &self.sessions {
                if s.active_in(t0, t1) {
                    active += 1;
                    if s.was_moved() {
                        moved += 1;
                    }
                }
            }
            let pct = if active == 0 {
                0.0
            } else {
                100.0 * moved as f64 / active as f64
            };
            series.push((t0, pct));
        }
        series
    }

    /// Fraction of sessions that abandoned (duration below the config's
    /// abandon ceiling).
    pub fn abandon_rate(&self) -> f64 {
        let n = self
            .sessions
            .iter()
            .filter(|s| s.abandoned(self.config.abandon_max_s))
            .count();
        n as f64 / self.sessions.len().max(1) as f64
    }

    /// Per-video request counts (for Zipf checks).
    pub fn video_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.config.videos];
        for s in &self.sessions {
            counts[s.video as usize] += 1;
        }
        counts
    }
}

/// Move probability at arrival time `t`, clamped to a sane band.
fn move_probability(config: &BrokerTraceConfig, t: f64) -> f64 {
    let phase = std::f64::consts::TAU * t / config.move_period_s;
    (config.move_base + config.move_amplitude * phase.sin()).clamp(0.02, 0.98)
}

/// Draws per-country CDN preference weights. B and C get weights that are
/// often tiny and sometimes dominant (cubed uniforms — heavy mass near 0),
/// reproducing Fig 7's extremes; A and Other get steadier weights.
fn country_prefs(world: &World, rng: &mut StdRng) -> Vec<CountryPrefs> {
    world
        .countries()
        .iter()
        .map(|_| {
            let a = 0.25 + 0.5 * rng.gen_range(0.0..1.0f64);
            let b = rng.gen_range(0.0..1.0f64).powi(3) * 2.0;
            let c = rng.gen_range(0.0..1.0f64).powi(3) * 2.0;
            let other = 0.05 + 0.15 * rng.gen_range(0.0..1.0f64);
            CountryPrefs {
                base: [a, b, c, other],
            }
        })
        .collect()
}

/// Samples a CDN for a session in a city of population weight `pop`,
/// optionally excluding the CDN the session is currently on.
fn sample_cdn(
    prefs: &CountryPrefs,
    pop: f64,
    config: &BrokerTraceConfig,
    rng: &mut StdRng,
    exclude: Option<CdnLabel>,
) -> CdnLabel {
    let boost = 1.0 + config.cdn_a_small_city_boost / (1.0 + pop);
    let mut w = prefs.base;
    w[0] *= boost;
    if let Some(e) = exclude {
        w[e.index()] = 0.0;
    }
    if w.iter().sum::<f64>() <= 0.0 {
        // Everything excluded/zero: fall back to "other".
        return CdnLabel::Other;
    }
    let picker = WeightedIndex::new(&w);
    CdnLabel::ALL[picker.sample(rng)]
}

fn sample_bitrate(config: &BrokerTraceConfig, rng: &mut StdRng) -> u32 {
    let ladder = &config.bitrate_ladder_kbps;
    let u: f64 = rng.gen_range(0.0..1.0);
    if u < config.bitrate_low_peak {
        ladder[0]
    } else if u < config.bitrate_low_peak + config.bitrate_high_peak {
        *ladder.last().expect("non-empty ladder")
    } else if ladder.len() > 2 {
        ladder[rng.gen_range(1..ladder.len() - 1)]
    } else {
        ladder[0]
    }
}

fn sample_lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * normal).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use vdx_geo::WorldConfig;

    fn setup() -> (World, BrokerTrace) {
        let world = World::generate(&WorldConfig::default(), 5);
        let trace = BrokerTrace::generate(&world, &BrokerTraceConfig::default(), 5);
        (world, trace)
    }

    #[test]
    fn trace_is_deterministic() {
        let world = World::generate(&WorldConfig::default(), 5);
        let a = BrokerTrace::generate(&world, &BrokerTraceConfig::small(), 9);
        let b = BrokerTrace::generate(&world, &BrokerTraceConfig::small(), 9);
        assert_eq!(a.sessions(), b.sessions());
    }

    #[test]
    fn session_count_and_window() {
        let (_, trace) = setup();
        assert_eq!(trace.sessions().len(), 33_400);
        for s in trace.sessions() {
            assert!((0.0..3_600.0).contains(&s.arrival_s));
            assert!(s.duration_s > 0.0);
        }
    }

    #[test]
    fn abandonment_matches_paper() {
        let (_, trace) = setup();
        let rate = trace.abandon_rate();
        assert!((0.74..0.82).contains(&rate), "abandon rate {rate}");
    }

    #[test]
    fn video_popularity_is_zipf() {
        let (_, trace) = setup();
        let counts = trace.video_counts();
        let est = stats::estimate_zipf_exponent(&counts).expect("estimable");
        assert!((0.5..1.4).contains(&est), "zipf exponent {est}");
        assert!(stats::head_mass_share(&counts, 0.05) > 0.3);
    }

    #[test]
    fn city_sizes_are_heavy_tailed() {
        let (_, trace) = setup();
        let counts: Vec<u64> = trace.requests_per_city().iter().map(|(_, c)| *c).collect();
        assert!(stats::head_mass_share(&counts, 0.1) > 0.4);
    }

    #[test]
    fn bitrates_are_bimodal() {
        let (_, trace) = setup();
        let rates: Vec<f64> = trace
            .sessions()
            .iter()
            .map(|s| s.bitrate_kbps as f64)
            .collect();
        assert!(stats::edge_mass_share(&rates, 8) > 0.6);
        // Both extremes individually popular.
        let low = trace
            .sessions()
            .iter()
            .filter(|s| s.bitrate_kbps == 235)
            .count();
        let high = trace
            .sessions()
            .iter()
            .filter(|s| s.bitrate_kbps == 3000)
            .count();
        assert!(low as f64 / 33_400.0 > 0.25);
        assert!(high as f64 / 33_400.0 > 0.25);
    }

    #[test]
    fn moved_series_matches_fig4_shape() {
        let (_, trace) = setup();
        let series = trace.moved_sessions_series(5.0);
        assert_eq!(series.len(), 720);
        let values: Vec<f64> = series.iter().map(|(_, p)| *p).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((28.0..52.0).contains(&mean), "mean moved {mean}%");
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 50.0, "max {max}");
        assert!(min < 30.0, "min {min}");
    }

    #[test]
    fn switches_are_within_session_and_change_cdn() {
        let (_, trace) = setup();
        for s in trace.sessions() {
            let mut prev_cdn = s.initial_cdn;
            let mut prev_t = s.arrival_s;
            for &(t, c) in &s.switches {
                assert!(t >= prev_t, "switch times ascend");
                assert_ne!(c, prev_cdn, "switch changes CDN");
                prev_cdn = c;
                prev_t = t;
            }
        }
        assert!(trace.sessions().iter().any(|s| s.was_moved()));
    }

    #[test]
    fn cdn_a_favoured_in_small_cities() {
        let (_, trace) = setup();
        let usage = trace.usage_by_city();
        // Split cities into small (<= 5 requests) and large (>= 50).
        let mut small = (0.0, 0u64);
        let mut large = (0.0, 0u64);
        for (_, req, shares) in &usage {
            if *req <= 5 {
                small.0 += shares[CdnLabel::A.index()] * *req as f64;
                small.1 += req;
            } else if *req >= 50 {
                large.0 += shares[CdnLabel::A.index()] * *req as f64;
                large.1 += req;
            }
        }
        assert!(small.1 > 0 && large.1 > 0);
        let small_share = small.0 / small.1 as f64;
        let large_share = large.0 / large.1 as f64;
        assert!(
            small_share > large_share + 0.05,
            "A small-city {small_share:.3} vs large-city {large_share:.3}"
        );
    }

    #[test]
    fn country_usage_varies_strongly() {
        let (world, trace) = setup();
        let usage = trace.usage_by_country(&world);
        let big: Vec<_> = usage.iter().filter(|(_, req, _)| *req >= 100).collect();
        assert!(
            big.len() >= 10,
            "only {} countries with >=100 requests",
            big.len()
        );
        // Fig 7: B's share should range from near-zero to dominant.
        let b_shares: Vec<f64> = big.iter().map(|(_, _, s)| s[CdnLabel::B.index()]).collect();
        let max = b_shares.iter().copied().fold(f64::MIN, f64::max);
        let min = b_shares.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            max - min > 0.3,
            "B share range [{min:.2}, {max:.2}] too flat"
        );
    }

    #[test]
    fn current_cdn_tracks_switches() {
        let mut rec = SessionRecord {
            id: SessionId(0),
            arrival_s: 0.0,
            video: 0,
            bitrate_kbps: 3000,
            duration_s: 100.0,
            city: CityId(0),
            asn: 64_512,
            initial_cdn: CdnLabel::A,
            switches: vec![],
        };
        assert_eq!(rec.current_cdn(), CdnLabel::A);
        rec.switches.push((50.0, CdnLabel::B));
        assert_eq!(rec.current_cdn(), CdnLabel::B);
        assert!(rec.was_moved());
        assert!(rec.active_in(99.0, 150.0));
        assert!(!rec.active_in(100.0, 150.0));
    }

    #[test]
    fn bits_accounting() {
        let rec = SessionRecord {
            id: SessionId(0),
            arrival_s: 0.0,
            video: 0,
            bitrate_kbps: 1000,
            duration_s: 10.0,
            city: CityId(0),
            asn: 64_512,
            initial_cdn: CdnLabel::A,
            switches: vec![],
        };
        assert_eq!(rec.bits(), 10_000_000.0);
    }
}
