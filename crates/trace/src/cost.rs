//! Country cost views — the data behind the paper's Fig 3.
//!
//! Fig 3 plots "average cost per byte serving clients geolocated in various
//! countries relative to the average" for the 20 countries with the highest
//! traffic volume. The world generator already gives each country a
//! `cost_index` (1.0 = average); this module derives the figure's view:
//! pick the top-`k` countries by request volume and report their relative
//! costs as percentages.

use crate::broker::BrokerTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vdx_geo::{CountryId, World};

/// One row of the Fig 3 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryCostRow {
    /// The country.
    pub country: CountryId,
    /// Anonymised code.
    pub code: String,
    /// Requests observed from this country in the trace.
    pub requests: u64,
    /// Cost per byte relative to the global average, in percent
    /// (100 = average).
    pub cost_vs_avg_pct: f64,
}

/// Computes the Fig 3 view: the `top_k` countries by traffic volume with
/// their cost-vs-average percentages, ordered by descending requests.
pub fn top_country_costs(world: &World, trace: &BrokerTrace, top_k: usize) -> Vec<CountryCostRow> {
    let mut requests: BTreeMap<CountryId, u64> = BTreeMap::new();
    for s in trace.sessions() {
        *requests.entry(world.city(s.city).country).or_insert(0) += 1;
    }
    let mut rows: Vec<CountryCostRow> = requests
        .into_iter()
        .map(|(country, req)| {
            let c = world.country(country);
            CountryCostRow {
                country,
                code: c.code.clone(),
                requests: req,
                cost_vs_avg_pct: 100.0 * c.cost_index,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.country.cmp(&b.country)));
    rows.truncate(top_k);
    rows
}

/// The min→max disparity of the given rows' costs (paper: up to ~30×).
pub fn cost_disparity(rows: &[CountryCostRow]) -> Option<f64> {
    let max = rows
        .iter()
        .map(|r| r.cost_vs_avg_pct)
        .fold(f64::NAN, f64::max);
    let min = rows
        .iter()
        .map(|r| r.cost_vs_avg_pct)
        .fold(f64::NAN, f64::min);
    if rows.is_empty() || min <= 0.0 {
        None
    } else {
        Some(max / min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerTraceConfig;
    use vdx_geo::WorldConfig;

    fn setup() -> (World, BrokerTrace) {
        let world = World::generate(&WorldConfig::default(), 5);
        let trace = BrokerTrace::generate(&world, &BrokerTraceConfig::default(), 5);
        (world, trace)
    }

    #[test]
    fn top20_is_sorted_and_sized() {
        let (world, trace) = setup();
        let rows = top_country_costs(&world, &trace, 20);
        assert_eq!(rows.len(), 20);
        for pair in rows.windows(2) {
            assert!(pair[0].requests >= pair[1].requests);
        }
    }

    #[test]
    fn disparity_is_large_like_fig3() {
        let (world, trace) = setup();
        let rows = top_country_costs(&world, &trace, 20);
        let disparity = cost_disparity(&rows).expect("rows present");
        assert!(disparity > 5.0, "disparity {disparity}");
        assert!(disparity < 300.0, "disparity {disparity}");
    }

    #[test]
    fn empty_rows_have_no_disparity() {
        assert!(cost_disparity(&[]).is_none());
    }
}
