//! Trace serialization: JSON for whole traces, CSV for session records.
//!
//! JSON (via serde) is the fidelity format — it round-trips every field.
//! The CSV codec mirrors how such traces are actually shipped between
//! operators: one session per line, switches encoded as a
//! `time@CDN;time@CDN` list. Both directions validate their input and
//! return typed errors rather than panicking on malformed data.

use crate::broker::{BrokerTrace, BrokerTraceConfig, CdnLabel, SessionId, SessionRecord};
use std::fmt;
use vdx_geo::CityId;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceIoError {
    /// A CSV line had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
        /// Offending content.
        content: String,
    },
    /// JSON (de)serialization failed.
    Json(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 9 fields, got {got}")
            }
            TraceIoError::BadField {
                line,
                field,
                content,
            } => {
                write!(f, "line {line}: bad {field}: {content:?}")
            }
            TraceIoError::Json(msg) => write!(f, "json error: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Serializes a whole trace (config + sessions) to JSON.
pub fn to_json(trace: &BrokerTrace) -> Result<String, TraceIoError> {
    serde_json::to_string(trace).map_err(|e| TraceIoError::Json(e.to_string()))
}

/// Deserializes a trace from JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<BrokerTrace, TraceIoError> {
    serde_json::from_str(json).map_err(|e| TraceIoError::Json(e.to_string()))
}

/// CSV header for [`sessions_to_csv`].
pub const CSV_HEADER: &str =
    "id,arrival_s,video,bitrate_kbps,duration_s,city,asn,initial_cdn,switches";

fn label_code(label: CdnLabel) -> &'static str {
    match label {
        CdnLabel::A => "A",
        CdnLabel::B => "B",
        CdnLabel::C => "C",
        CdnLabel::Other => "other",
    }
}

fn parse_label(s: &str) -> Option<CdnLabel> {
    match s {
        "A" => Some(CdnLabel::A),
        "B" => Some(CdnLabel::B),
        "C" => Some(CdnLabel::C),
        "other" => Some(CdnLabel::Other),
        _ => None,
    }
}

/// Encodes session records as CSV (header + one line per session).
pub fn sessions_to_csv(sessions: &[SessionRecord]) -> String {
    let mut out = String::with_capacity(sessions.len() * 64 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for s in sessions {
        let switches = s
            .switches
            .iter()
            .map(|(t, c)| format!("{t}@{}", label_code(*c)))
            .collect::<Vec<_>>()
            .join(";");
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            s.id.0,
            s.arrival_s,
            s.video,
            s.bitrate_kbps,
            s.duration_s,
            s.city.0,
            s.asn,
            label_code(s.initial_cdn),
            switches
        ));
    }
    out
}

/// Decodes session records from CSV produced by [`sessions_to_csv`].
/// The header line is required.
pub fn sessions_from_csv(csv: &str) -> Result<Vec<SessionRecord>, TraceIoError> {
    let mut sessions = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 {
            // Header; tolerate exact match only.
            if line != CSV_HEADER {
                return Err(TraceIoError::BadField {
                    line: 1,
                    field: "header",
                    content: line.to_string(),
                });
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 9 {
            return Err(TraceIoError::FieldCount {
                line: lineno,
                got: fields.len(),
            });
        }
        let bad = |field: &'static str, content: &str| TraceIoError::BadField {
            line: lineno,
            field,
            content: content.to_string(),
        };
        let id: u32 = fields[0].parse().map_err(|_| bad("id", fields[0]))?;
        let arrival_s: f64 = fields[1].parse().map_err(|_| bad("arrival_s", fields[1]))?;
        let video: u32 = fields[2].parse().map_err(|_| bad("video", fields[2]))?;
        let bitrate_kbps: u32 = fields[3]
            .parse()
            .map_err(|_| bad("bitrate_kbps", fields[3]))?;
        let duration_s: f64 = fields[4]
            .parse()
            .map_err(|_| bad("duration_s", fields[4]))?;
        let city: u32 = fields[5].parse().map_err(|_| bad("city", fields[5]))?;
        let asn: u32 = fields[6].parse().map_err(|_| bad("asn", fields[6]))?;
        let initial_cdn = parse_label(fields[7]).ok_or_else(|| bad("initial_cdn", fields[7]))?;
        let mut switches = Vec::new();
        if !fields[8].is_empty() {
            for part in fields[8].split(';') {
                let (t, c) = part.split_once('@').ok_or_else(|| bad("switches", part))?;
                let time: f64 = t.parse().map_err(|_| bad("switch time", t))?;
                let cdn = parse_label(c).ok_or_else(|| bad("switch cdn", c))?;
                switches.push((time, cdn));
            }
        }
        sessions.push(SessionRecord {
            id: SessionId(id),
            arrival_s,
            video,
            bitrate_kbps,
            duration_s,
            city: CityId(city),
            asn,
            initial_cdn,
            switches,
        });
    }
    Ok(sessions)
}

/// Convenience: full CSV round-trip of a trace body with a given config.
pub fn trace_from_csv(config: BrokerTraceConfig, csv: &str) -> Result<BrokerTrace, TraceIoError> {
    Ok(BrokerTrace::from_sessions(config, sessions_from_csv(csv)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerTraceConfig;
    use vdx_geo::{World, WorldConfig};

    fn trace() -> BrokerTrace {
        let world = World::generate(&WorldConfig::default(), 2);
        BrokerTrace::generate(&world, &BrokerTraceConfig::small(), 2)
    }

    #[test]
    fn json_roundtrip() {
        let t = trace();
        let json = to_json(&t).expect("serializes");
        let back = from_json(&json).expect("deserializes");
        assert_eq!(t.sessions(), back.sessions());
    }

    #[test]
    fn csv_roundtrip() {
        let t = trace();
        let csv = sessions_to_csv(t.sessions());
        let back = sessions_from_csv(&csv).expect("parses");
        assert_eq!(t.sessions(), &back[..]);
    }

    #[test]
    fn csv_rejects_bad_header() {
        let err = sessions_from_csv("nope\n").unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::BadField {
                field: "header",
                ..
            }
        ));
    }

    #[test]
    fn csv_rejects_short_lines() {
        let csv = format!("{CSV_HEADER}\n1,2,3\n");
        let err = sessions_from_csv(&csv).unwrap_err();
        assert_eq!(err, TraceIoError::FieldCount { line: 2, got: 3 });
    }

    #[test]
    fn csv_rejects_bad_cdn() {
        let csv = format!("{CSV_HEADER}\n0,0.0,1,235,5.0,3,64512,Z,\n");
        let err = sessions_from_csv(&csv).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::BadField {
                field: "initial_cdn",
                ..
            }
        ));
    }

    #[test]
    fn csv_parses_switch_lists() {
        let csv = format!("{CSV_HEADER}\n0,0.5,1,235,100.0,3,64512,A,10.5@B;20@C\n");
        let sessions = sessions_from_csv(&csv).expect("parses");
        assert_eq!(
            sessions[0].switches,
            vec![(10.5, CdnLabel::B), (20.0, CdnLabel::C)]
        );
        assert_eq!(sessions[0].current_cdn(), CdnLabel::C);
    }

    #[test]
    fn error_display_is_informative() {
        let err = TraceIoError::BadField {
            line: 3,
            field: "asn",
            content: "x".into(),
        };
        assert!(err.to_string().contains("line 3"));
        assert!(err.to_string().contains("asn"));
    }
}
