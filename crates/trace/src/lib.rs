//! # vdx-trace — trace substrate for VDX
//!
//! The paper's analysis (§3) and evaluation (§5, §7) are driven by two
//! proprietary data sets: an hour-long broker session trace (33.4 K requests
//! for a music-video content provider) and a major CDN's Internet mapping
//! data (client-block→cluster performance scores). Neither is public, so
//! this crate synthesizes both with the *published* statistical properties
//! and provides the estimators needed to verify those properties hold:
//!
//! * [`broker`] — session records and the trace generator. Reproduced
//!   properties (§3.1): Zipf video popularity, power-law client-city sizes,
//!   ~78 % immediate abandonment, bimodal bitrates (peaks at the lowest and
//!   highest rungs), three named CDNs (A distributed, B and C centralized)
//!   plus "other", mid-stream CDN switching averaging ~40 % of active
//!   sessions and varying roughly between 20 % and 60 % (Fig 4), CDN A
//!   favoured in small cities while B and C are size-insensitive (Fig 5),
//!   and strong per-country usage variation (Fig 7).
//! * [`mapping`] — the CDN mapping data: sparse client-city→cluster-site
//!   scores with the paper's own regression-on-distance gap filling (§5.1).
//! * [`cost`] — per-country delivery-cost views (the paper's Fig 3).
//! * [`stats`] — Zipf/power-law samplers and estimators, histograms,
//!   medians; used both by generators and by the tests that hold the
//!   generators to the published statistics.
//! * [`io`] — JSON serialization and a CSV codec for session records, so
//!   traces can be shipped to / loaded from disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod cost;
pub mod io;
pub mod mapping;
pub mod stats;

pub use broker::{BrokerTrace, BrokerTraceConfig, CdnLabel, SessionId, SessionRecord};
pub use mapping::{MappingConfig, MappingData};
