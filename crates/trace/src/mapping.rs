//! CDN Internet mapping data: sparse client-city → cluster-site scores.
//!
//! The paper's CDN "collects Internet mapping data … a score estimating
//! the performance between blocks of client IP addresses and candidate CDN
//! clusters" (§3.1), and in simulation "some client-cluster pairings do not
//! have scores, so we extrapolate them by computing a linear regression of
//! scores with respect to client-cluster distance" (§5.1).
//!
//! [`MappingData`] holds the measured subset, and fills gaps with exactly
//! that regression. The score *source* is injected as a closure so this
//! crate stays independent of how scores are produced (in the full system
//! they come from `vdx-netsim::NetModel`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vdx_geo::{CityId, World};
use vdx_netsim::{Score, ScoreExtrapolator};

/// Configuration for mapping-data synthesis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Probability that a given (client city, site city) pair was actually
    /// measured. The remainder must be extrapolated, as in the paper.
    pub coverage: f64,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig { coverage: 0.8 }
    }
}

/// Sparse measured scores plus the regression used to fill the gaps.
#[derive(Debug, Clone)]
pub struct MappingData {
    measured: HashMap<(CityId, CityId), Score>,
    extrapolator: Option<ScoreExtrapolator>,
}

impl MappingData {
    /// Measures scores between every client city and every `site` city,
    /// keeping each measurement with probability `config.coverage`, and fits
    /// the distance regression on the measured subset.
    ///
    /// `score_fn(client, site)` supplies ground-truth measurements.
    pub fn measure(
        world: &World,
        sites: &[CityId],
        config: &MappingConfig,
        seed: u64,
        mut score_fn: impl FnMut(CityId, CityId) -> Score,
    ) -> MappingData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut measured = HashMap::new();
        let mut samples = Vec::new();
        for client in world.cities() {
            for &site in sites {
                if rng.gen_bool(config.coverage.clamp(0.0, 1.0)) {
                    let score = score_fn(client.id, site);
                    measured.insert((client.id, site), score);
                    samples.push((world.distance_km(client.id, site), score));
                }
            }
        }
        let extrapolator = ScoreExtrapolator::fit(&samples);
        MappingData {
            measured,
            extrapolator,
        }
    }

    /// The score for a pair: measured if available, otherwise extrapolated
    /// from distance. Returns `None` only when the pair is unmeasured *and*
    /// no regression could be fitted (fewer than two measurements).
    pub fn score(&self, world: &World, client: CityId, site: CityId) -> Option<Score> {
        if let Some(s) = self.measured.get(&(client, site)) {
            return Some(*s);
        }
        self.extrapolator
            .as_ref()
            .map(|e| e.predict(world.distance_km(client, site)))
    }

    /// Whether the pair was directly measured.
    pub fn is_measured(&self, client: CityId, site: CityId) -> bool {
        self.measured.contains_key(&(client, site))
    }

    /// Number of measured pairs.
    pub fn measured_count(&self) -> usize {
        self.measured.len()
    }

    /// The fitted regression, if any (for reporting).
    pub fn extrapolator(&self) -> Option<&ScoreExtrapolator> {
        self.extrapolator.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdx_geo::WorldConfig;
    use vdx_netsim::{NetModel, NetModelConfig};

    fn setup(coverage: f64) -> (World, Vec<CityId>, MappingData) {
        let world = World::generate(
            &WorldConfig {
                countries: 12,
                cities: 60,
                ..Default::default()
            },
            3,
        );
        let net = NetModel::new(NetModelConfig::default(), 3);
        let sites: Vec<CityId> = world.cities().iter().take(10).map(|c| c.id).collect();
        let data = MappingData::measure(
            &world,
            &sites,
            &MappingConfig { coverage },
            3,
            |client, site| net.score(&world, client, site),
        );
        (world, sites, data)
    }

    #[test]
    fn full_coverage_measures_everything() {
        let (world, sites, data) = setup(1.0);
        assert_eq!(data.measured_count(), world.cities().len() * sites.len());
        for c in world.cities() {
            for &s in &sites {
                assert!(data.is_measured(c.id, s));
                assert!(data.score(&world, c.id, s).is_some());
            }
        }
    }

    #[test]
    fn partial_coverage_extrapolates_the_rest() {
        let (world, sites, data) = setup(0.5);
        let total = world.cities().len() * sites.len();
        assert!(data.measured_count() < total);
        assert!(data.measured_count() > total / 4);
        // Every pair still gets a score.
        for c in world.cities() {
            for &s in &sites {
                assert!(data.score(&world, c.id, s).is_some());
            }
        }
    }

    #[test]
    fn extrapolated_scores_grow_with_distance() {
        let (world, sites, data) = setup(0.7);
        let ex = data.extrapolator().expect("regression fitted");
        assert!(
            ex.fit_params().slope > 0.0,
            "score should grow with distance"
        );
        // Spot-check an unmeasured pair against its neighbours' trend.
        let client = world
            .cities()
            .iter()
            .find(|c| sites.iter().any(|&s| !data.is_measured(c.id, s)))
            .expect("some unmeasured pair exists");
        let site = *sites
            .iter()
            .find(|&&s| !data.is_measured(client.id, s))
            .expect("one");
        let predicted = data.score(&world, client.id, site).expect("predicted");
        assert!(predicted.value() > 0.0);
    }

    #[test]
    fn zero_coverage_yields_no_scores() {
        let (world, sites, data) = setup(0.0);
        assert_eq!(data.measured_count(), 0);
        assert!(data.score(&world, world.cities()[0].id, sites[0]).is_none());
    }
}
