//! Samplers and estimators for the trace statistics the paper publishes.
//!
//! The generators in [`crate::broker`] *sample* from these distributions;
//! the unit tests *estimate* the parameters back from generated traces and
//! assert they match. That closes the loop on "the synthetic trace has the
//! published statistics".

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`. Built once (O(n)), sampled in O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Weighted index sampler (alias-free linear CDF; fine for the sizes here).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Builds a sampler over `weights`; weights must be non-negative with a
    /// positive sum.
    ///
    /// # Panics
    /// Panics on empty input, negative weights, or zero total weight.
    pub fn new(weights: &[f64]) -> WeightedIndex {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for v in &mut cdf {
            *v /= acc;
        }
        WeightedIndex { cdf }
    }

    /// Draws an index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Estimates a Zipf exponent from per-item counts by log–log regression of
/// frequency against rank. Returns `None` with fewer than three distinct
/// positive counts.
pub fn estimate_zipf_exponent(counts: &[u64]) -> Option<f64> {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    if sorted.len() < 3 {
        return None;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(rank, &c)| (((rank + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    // OLS slope; the Zipf exponent is its negation.
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    Some(-(sxy / sxx))
}

/// Share of total mass held by the largest `top_fraction` of items — a
/// heavy-tail diagnostic (power laws concentrate mass at the head).
pub fn head_mass_share(counts: &[u64], top_fraction: f64) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let head = ((sorted.len() as f64 * top_fraction).ceil() as usize).max(1);
    let head_sum: u64 = sorted[..head.min(sorted.len())].iter().sum();
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        0.0
    } else {
        head_sum as f64 / total as f64
    }
}

/// Fraction of samples falling in the lowest and highest bins of `k`
/// equal-width bins over the data range — a crude bimodality diagnostic used
/// to check the bitrate distribution ("peaks at the lowest and highest
/// bitrate").
pub fn edge_mass_share(values: &[f64], k: usize) -> f64 {
    if values.is_empty() || k < 2 {
        return 0.0;
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if min == max {
        return 1.0;
    }
    let width = (max - min) / k as f64;
    let edge = values
        .iter()
        .filter(|&&v| v < min + width || v >= max - width)
        .count();
    edge as f64 / values.len() as f64
}

/// Median of a slice (averaging the two middle elements for even lengths).
/// Returns `None` on empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// `q`-quantile (0 ≤ q ≤ 1) by nearest-rank. Returns `None` on empty input.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    Some(v[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[100]);
        // Rank-0 mass for s=1, n=1000 is 1/H_1000 ≈ 13%.
        let share = counts[0] as f64 / 50_000.0;
        assert!((0.10..0.17).contains(&share), "share {share}");
    }

    #[test]
    fn zipf_exponent_roundtrip() {
        let z = Zipf::new(500, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; 500];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let est = estimate_zipf_exponent(&counts).expect("estimable");
        assert!((est - 0.9).abs() < 0.25, "estimated {est}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_index_zero_total_panics() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn head_mass_share_on_uniform_and_skewed() {
        let uniform = vec![10u64; 100];
        assert!((head_mass_share(&uniform, 0.1) - 0.1).abs() < 1e-9);
        let mut skewed = vec![1u64; 100];
        skewed[0] = 1_000;
        assert!(head_mass_share(&skewed, 0.1) > 0.9);
    }

    #[test]
    fn edge_mass_detects_bimodality() {
        let bimodal: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        assert!(edge_mass_share(&bimodal, 10) > 0.99);
        let uniform: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        assert!(edge_mass_share(&uniform, 10) < 0.3);
    }

    #[test]
    fn median_and_quantile() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), Some(1.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 1.0), Some(5.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.5), Some(3.0));
    }

    #[test]
    fn estimator_degenerate_inputs() {
        assert!(estimate_zipf_exponent(&[]).is_none());
        assert!(estimate_zipf_exponent(&[5, 0]).is_none());
    }
}
