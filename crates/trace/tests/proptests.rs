//! Property tests for the trace substrate: the generator must hold its
//! published statistics for *any* seed, and the codecs must be total.

use proptest::prelude::*;
use vdx_geo::{World, WorldConfig};
use vdx_trace::io;
use vdx_trace::{BrokerTrace, BrokerTraceConfig, CdnLabel, SessionId, SessionRecord};

fn small_world(seed: u64) -> World {
    World::generate(
        &WorldConfig {
            countries: 10,
            cities: 40,
            ..Default::default()
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The published trace statistics hold for any seed, not just the one
    /// the unit tests use.
    #[test]
    fn trace_statistics_hold_for_any_seed(seed in any::<u64>()) {
        let world = small_world(seed);
        let config = BrokerTraceConfig { sessions: 3_000, videos: 300, ..Default::default() };
        let trace = BrokerTrace::generate(&world, &config, seed);
        // Abandonment band around the paper's 78%.
        let rate = trace.abandon_rate();
        prop_assert!((0.72..0.84).contains(&rate), "abandon {rate}");
        // Every session well-formed.
        for s in trace.sessions() {
            prop_assert!(s.duration_s > 0.0);
            prop_assert!((0.0..config.trace_duration_s).contains(&s.arrival_s));
            prop_assert!(config.bitrate_ladder_kbps.contains(&s.bitrate_kbps));
            let mut prev = s.initial_cdn;
            for &(_, c) in &s.switches {
                prop_assert_ne!(c, prev);
                prev = c;
            }
        }
        // Move series mean in a broad Fig 4 band.
        let series = trace.moved_sessions_series(5.0);
        let mean: f64 = series.iter().map(|(_, p)| p).sum::<f64>() / series.len() as f64;
        prop_assert!((20.0..60.0).contains(&mean), "moved mean {mean}");
    }

    /// CSV encode/decode is the identity on arbitrary well-formed records.
    #[test]
    fn csv_roundtrip_arbitrary_records(
        records in proptest::collection::vec(
            (0.0f64..3600.0, any::<u32>(), 1u32..9999, 0.1f64..9999.0, 0u32..9999,
             any::<u32>(), 0usize..4, 0usize..3),
            0..20,
        )
    ) {
        let labels = [CdnLabel::A, CdnLabel::B, CdnLabel::C, CdnLabel::Other];
        let sessions: Vec<SessionRecord> = records
            .iter()
            .enumerate()
            .map(|(i, &(arrival, video, bitrate, duration, city, asn, label, switches))| {
                let mut cur = labels[label];
                let switch_list: Vec<(f64, CdnLabel)> = (0..switches)
                    .map(|k| {
                        cur = labels[(label + k + 1) % 4];
                        (arrival + k as f64, cur)
                    })
                    .collect();
                SessionRecord {
                    id: SessionId(i as u32),
                    arrival_s: arrival,
                    video,
                    bitrate_kbps: bitrate,
                    duration_s: duration,
                    city: vdx_geo::CityId(city),
                    asn,
                    initial_cdn: labels[label],
                    switches: switch_list,
                }
            })
            .collect();
        let csv = io::sessions_to_csv(&sessions);
        let back = io::sessions_from_csv(&csv).expect("own output parses");
        prop_assert_eq!(back, sessions);
    }

    /// The CSV parser is total: arbitrary text never panics.
    #[test]
    fn csv_parser_total(garbage in "\\PC*") {
        let _ = io::sessions_from_csv(&garbage);
    }

    /// JSON round trip preserves whole traces.
    #[test]
    fn json_roundtrip_any_seed(seed in any::<u64>()) {
        let world = small_world(seed);
        let trace = BrokerTrace::generate(
            &world,
            &BrokerTraceConfig { sessions: 200, videos: 50, ..Default::default() },
            seed,
        );
        let json = io::to_json(&trace).expect("serializes");
        let back = io::from_json(&json).expect("parses");
        prop_assert_eq!(trace.sessions(), back.sessions());
    }
}
