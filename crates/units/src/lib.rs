//! Dimension-typed quantities for the VDX economy.
//!
//! Every quantity that crosses a public API in the pricing, capacity, and
//! settlement paths is wrapped in a newtype so the compiler rejects unit
//! confusion (adding a price to a bandwidth, charging a margin as money).
//! `vdx-lint` rule R1 enforces that the enforced modules do not re-grow
//! bare `f64` in their public surfaces.
//!
//! # Stored quanta
//!
//! The wrappers are `#[serde(transparent)]` views over the exact `f64`
//! values the economy has always journaled:
//!
//! * [`Kbps`] stores kilobits per second.
//! * [`Gb`] stores **megabits** — the settlement quantum the ledger has
//!   used since the seed (`mbps = demand_kbps / 1000`).
//! * [`UsdPerGb`] stores **dollars per megabit**, matching [`Gb`].
//! * [`Usd`] stores dollars.
//! * [`Margin`] is a dimensionless price multiplier.
//!
//! The type names record the *dimension* (traffic volume, unit price);
//! constructors and accessors are scale-explicit (`from_megabits`,
//! `per_megabit`, `as_gigabits`) so no call site ever guesses. The stored
//! quantum is deliberately not rescaled to base-10 gigabits: journal
//! byte-identity with pre-units runs is a hard requirement, and
//! `(x / 1000.0) * 1000.0` is not an f64 identity.
//!
//! # Checked arithmetic
//!
//! Constructors and arithmetic carry `debug_assert!` guards against
//! non-finite values and (where the domain demands it) negative results.
//! The checks compile out of release builds, so hot paths are untouched.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! base_impls {
    ($ty:ident, $unit:literal) => {
        impl $ty {
            /// The zero quantity.
            pub const ZERO: $ty = $ty(0.0);

            /// Raw numeric value in the stored quantum (see module docs).
            #[inline]
            pub fn as_f64(self) -> f64 {
                self.0
            }

            /// True when the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total order over the underlying values (IEEE `total_cmp`),
            /// usable as a sort key without `partial_cmp().unwrap()`.
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// The smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $ty(self.0.min(other.0))
            }

            /// The larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $ty(self.0.max(other.0))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

macro_rules! additive_impls {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                let out = $ty(self.0 + rhs.0);
                debug_assert!(out.0.is_finite(), "overflowed {}", stringify!($ty));
                out
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                *self = *self + rhs;
            }
        }

        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                let out = $ty(self.0 - rhs.0);
                debug_assert!(out.0.is_finite(), "overflowed {}", stringify!($ty));
                out
            }
        }

        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                *self = *self - rhs;
            }
        }

        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty::ZERO, |acc, x| acc + x)
            }
        }

        impl<'a> Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a $ty>>(iter: I) -> $ty {
                iter.fold($ty::ZERO, |acc, x| acc + *x)
            }
        }

        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                debug_assert!(rhs.is_finite(), "scaling {} by non-finite", stringify!($ty));
                $ty(self.0 * rhs)
            }
        }

        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                debug_assert!(rhs != 0.0, "dividing {} by zero", stringify!($ty));
                $ty(self.0 / rhs)
            }
        }
    };
}

/// Throughput in kilobits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Kbps(f64);

base_impls!(Kbps, "kbit/s");
additive_impls!(Kbps);

impl Kbps {
    /// Wrap a raw kilobit-per-second value.
    #[inline]
    pub fn new(kbps: f64) -> Kbps {
        debug_assert!(kbps.is_finite(), "non-finite Kbps");
        Kbps(kbps)
    }

    /// The same throughput in megabits per second.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1000.0
    }

    /// Traffic volume delivered by sustaining this rate over the economy's
    /// unit accounting window (stored in megabits; see module docs).
    #[inline]
    pub fn volume(self) -> Gb {
        Gb(self.0 / 1000.0)
    }

    /// Midpoint of two rates (median over an even-sized set).
    #[inline]
    pub fn midpoint(self, other: Kbps) -> Kbps {
        Kbps((self.0 + other.0) / 2.0)
    }

    /// `self - rhs`, floored at zero — headroom-style subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Kbps) -> Kbps {
        Kbps((self.0 - rhs.0).max(0.0))
    }

    /// Utilization of `capacity` by this load (`1.0` on an exact fill).
    /// Zero capacity yields infinite utilization, matching raw division.
    #[inline]
    pub fn fraction_of(self, capacity: Kbps) -> f64 {
        self.0 / capacity.0
    }
}

/// Traffic volume. Stored in **megabits**, the ledger's historical
/// settlement quantum; use [`Gb::as_gigabits`] for display in Gb.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Gb(f64);

base_impls!(Gb, "Mb");
additive_impls!(Gb);

impl Gb {
    /// Wrap a volume expressed in megabits.
    #[inline]
    pub fn from_megabits(mb: f64) -> Gb {
        debug_assert!(mb.is_finite(), "non-finite traffic volume");
        Gb(mb)
    }

    /// The stored volume in megabits.
    #[inline]
    pub fn as_megabits(self) -> f64 {
        self.0
    }

    /// The volume rescaled to gigabits (display/reporting only — derived
    /// by division, so not a journaled quantity).
    #[inline]
    pub fn as_gigabits(self) -> f64 {
        self.0 / 1000.0
    }
}

/// Money in US dollars.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Usd(f64);

base_impls!(Usd, "USD");
additive_impls!(Usd);

impl Usd {
    /// Wrap a raw dollar amount.
    #[inline]
    pub fn new(dollars: f64) -> Usd {
        debug_assert!(dollars.is_finite(), "non-finite Usd");
        Usd(dollars)
    }

    /// `self / other` as a dimensionless ratio (e.g. price-to-cost).
    /// Division by zero yields infinity, matching raw division.
    #[inline]
    pub fn ratio_to(self, other: Usd) -> f64 {
        self.0 / other.0
    }
}

impl Neg for Usd {
    type Output = Usd;
    #[inline]
    fn neg(self) -> Usd {
        Usd(-self.0)
    }
}

/// Unit price of traffic. Stored in **dollars per megabit**, matching the
/// [`Gb`] quantum, so `price.charge(volume)` reproduces the ledger's
/// historical `price_per_mb * mbps` product bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UsdPerGb(f64);

base_impls!(UsdPerGb, "USD/Mb");

impl UsdPerGb {
    /// Wrap a price expressed in dollars per megabit.
    #[inline]
    pub fn per_megabit(price: f64) -> UsdPerGb {
        debug_assert!(price.is_finite(), "non-finite price");
        UsdPerGb(price)
    }

    /// The stored price in dollars per megabit.
    #[inline]
    pub fn as_per_megabit(self) -> f64 {
        self.0
    }

    /// The price rescaled to dollars per gigabit (display/reporting only).
    #[inline]
    pub fn as_per_gigabit(self) -> f64 {
        self.0 * 1000.0
    }

    /// Midpoint of two prices (median over an even-sized set).
    #[inline]
    pub fn midpoint(self, other: UsdPerGb) -> UsdPerGb {
        UsdPerGb((self.0 + other.0) / 2.0)
    }

    /// The money owed for delivering `volume` at this price.
    #[inline]
    pub fn charge(self, volume: Gb) -> Usd {
        let out = Usd(self.0 * volume.0);
        debug_assert!(out.is_finite(), "non-finite charge");
        out
    }
}

impl Add for UsdPerGb {
    type Output = UsdPerGb;
    #[inline]
    fn add(self, rhs: UsdPerGb) -> UsdPerGb {
        UsdPerGb(self.0 + rhs.0)
    }
}

impl Sub for UsdPerGb {
    type Output = UsdPerGb;
    #[inline]
    fn sub(self, rhs: UsdPerGb) -> UsdPerGb {
        UsdPerGb(self.0 - rhs.0)
    }
}

impl Mul<Margin> for UsdPerGb {
    type Output = UsdPerGb;
    #[inline]
    fn mul(self, rhs: Margin) -> UsdPerGb {
        let out = UsdPerGb(self.0 * rhs.0);
        debug_assert!(out.0.is_finite(), "non-finite marked-up price");
        out
    }
}

/// Dimensionless multiplicative markup applied to a unit price
/// (`1.0` = sell at cost).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Margin(f64);

base_impls!(Margin, "x");

impl Margin {
    /// Sell-at-cost: multiply a price by `UNIT` and it is unchanged.
    pub const UNIT: Margin = Margin(1.0);

    /// Wrap a raw multiplier.
    #[inline]
    pub fn new(factor: f64) -> Margin {
        debug_assert!(factor.is_finite(), "non-finite margin");
        Margin(factor)
    }

    /// `new` usable in `const` contexts (skips the finiteness debug-check,
    /// which is not const-evaluable on our MSRV).
    pub const fn literal(factor: f64) -> Margin {
        Margin(factor)
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Margin, hi: Margin) -> Margin {
        Margin(self.0.clamp(lo.0, hi.0))
    }

    /// Scale the multiplier itself (e.g. decay toward cost).
    #[inline]
    pub fn scale(self, factor: f64) -> Margin {
        debug_assert!(factor.is_finite(), "non-finite margin scale");
        Margin(self.0 * factor)
    }
}

impl Default for Margin {
    fn default() -> Margin {
        Margin::UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_matches_raw_product() {
        // The settlement path computed `price_per_mb * (kbps / 1000.0)`
        // before the newtypes existed; the typed path must be bit-identical.
        for &(price, kbps) in &[(0.003, 1234.5), (0.1, 7.0), (1.7e-3, 98765.4321)] {
            let raw = price * (kbps / 1000.0);
            let typed = UsdPerGb::per_megabit(price).charge(Kbps::new(kbps).volume());
            assert_eq!(raw.to_bits(), typed.as_f64().to_bits());
        }
    }

    #[test]
    fn markup_matches_raw_product() {
        let raw = 0.0042_f64 * 1.2;
        let typed = UsdPerGb::per_megabit(0.0042) * Margin::new(1.2);
        assert_eq!(raw.to_bits(), typed.as_per_megabit().to_bits());
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let head = Kbps::new(100.0).saturating_sub(Kbps::new(250.0));
        assert_eq!(head, Kbps::ZERO);
    }

    #[test]
    fn totals_and_ordering() {
        let total: Kbps = [Kbps::new(1.0), Kbps::new(2.5)].iter().sum();
        assert_eq!(total.as_f64(), 3.5);
        assert_eq!(Kbps::new(2.0).max(Kbps::new(3.0)), Kbps::new(3.0));
        assert!(Usd::new(1.0) < Usd::new(2.0));
        assert_eq!(
            Usd::new(1.0).total_cmp(&Usd::new(2.0)),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn ratio_and_fraction_match_raw_division() {
        assert_eq!(Usd::new(6.0).ratio_to(Usd::new(4.0)), 1.5);
        assert_eq!(Kbps::new(500.0).fraction_of(Kbps::new(1000.0)), 0.5);
        assert!(Kbps::new(1.0).fraction_of(Kbps::ZERO).is_infinite());
    }
}
