//! The §7.2 scenario: what happens to the ecosystem when hundreds of
//! single-cluster "city-centric" CDNs join?
//!
//! ```text
//! cargo run --example city_cdns --release -- [how_many]
//! ```
//!
//! Paper finding: under today's flat-rate Brokered world the city CDNs
//! *always* profit (their contract price equals their one cluster's cost)
//! while traditional CDNs keep losing; VDX levels the playing field.

use vdx::core::settle;
use vdx::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);

    let base = Scenario::build(ScenarioConfig::small());
    let expanded = base.with_city_centric(n);
    println!(
        "fleet: {} traditional CDNs + {} city-centric newcomers\n",
        base.fleet.cdns.len(),
        n
    );

    let policy = CpPolicy::balanced();
    let brokered = settle(
        &expanded.run(Design::Brokered, policy),
        &expanded.world,
        &expanded.fleet,
    );
    let vdx = settle(
        &expanded.run(Design::Marketplace, policy),
        &expanded.world,
        &expanded.fleet,
    );

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "CDN", "kbps(Brk)", "profit(Brk)", "kbps(VDX)", "profit(VDX)"
    );
    for (i, cdn) in expanded.fleet.cdns.iter().enumerate() {
        // Print traditional CDNs and the first few newcomers.
        if i >= base.fleet.cdns.len() + 5 {
            continue;
        }
        let b = &brokered.per_cdn[i].ledger;
        let v = &vdx.per_cdn[i].ledger;
        println!(
            "{:<10} {:>12.0} {:>+12.3} {:>12.0} {:>+12.3}{}",
            cdn.id.to_string(),
            b.traffic_kbps.as_f64(),
            b.profit().as_f64(),
            v.traffic_kbps.as_f64(),
            v.profit().as_f64(),
            if matches!(cdn.model, DeploymentModel::CityCentric { .. }) {
                "  (city)"
            } else {
                ""
            },
        );
    }

    let city_range = base.fleet.cdns.len()..expanded.fleet.cdns.len();
    let losing_city_brk = city_range
        .clone()
        .filter(|&i| brokered.per_cdn[i].ledger.profit() < vdx::core::units::Usd::ZERO)
        .count();
    let served_city_brk = city_range
        .clone()
        .filter(|&i| brokered.per_cdn[i].ledger.traffic_kbps > vdx::core::units::Kbps::ZERO)
        .count();
    println!(
        "\ncity CDNs under Brokered: {served_city_brk}/{n} served traffic, {losing_city_brk} lost money \
         (paper: city CDNs always profit)"
    );
    println!(
        "losing CDNs overall: Brokered {}, VDX {} (paper: VDX levels the field at 0)",
        brokered.losing_cdns(),
        vdx.losing_cdns()
    );
}
