//! Failure and fraud drill (§6.3 of the paper): cluster failures with
//! Delivery Protocol failover, a whole-CDN failure re-optimized around,
//! and a fraudulent CDN caught by the reputation system.
//!
//! ```text
//! cargo run --example failover_drill --release
//! ```

use vdx::broker::optimize;
use vdx::core::delivery::DeliveryDirectory;
use vdx::core::failure::{direct_fallback, exclude_cdns};
use vdx::core::{settle, ReputationSystem};
use vdx::prelude::*;

fn main() {
    let scenario = Scenario::build(ScenarioConfig::small());
    let policy = CpPolicy::balanced();
    let outcome = scenario.run(Design::Marketplace, policy);

    // --- Drill 1: a cluster dies; clients fail over within the round's
    // announced alternatives (no new Decision round needed).
    let mut directory = DeliveryDirectory::from_round(&outcome);
    let victim_group = &outcome.problem.groups[0];
    let primary = directory
        .query(victim_group.city, victim_group.bitrate_kbps)
        .expect("route exists");
    directory.mark_failed(primary);
    match directory.query(victim_group.city, victim_group.bitrate_kbps) {
        Some(backup) => println!(
            "drill 1: cluster {primary} failed; clients in {} fail over to {backup}",
            victim_group.city
        ),
        None => println!("drill 1: cluster {primary} failed; no alternative announced"),
    }
    directory.mark_recovered(primary);

    // --- Drill 2: an entire CDN drops out of the marketplace; the broker
    // re-optimizes over everyone else's bids.
    let failed_cdn = CdnId(0);
    match exclude_cdns(&outcome.problem, &[failed_cdn]) {
        Ok(filtered) => {
            let redone = optimize(&filtered, &policy, &OptimizeMode::Heuristic);
            println!(
                "drill 2: {failed_cdn} failed; re-optimized {} groups around it \
                 (objective {:.0} -> {:.0})",
                redone.choice.len(),
                outcome.assignment.objective,
                redone.objective
            );
        }
        Err(orphans) => println!(
            "drill 2: {failed_cdn} failed and {} groups have no other option",
            orphans.len()
        ),
    }

    // --- Drill 3: the broker itself fails; CP software falls back to
    // querying one CDN directly (traditional delivery).
    let fallback = direct_fallback(&scenario.fleet, &scenario.groups, CdnId(1), |a, b| {
        scenario.score_of(a, b)
    });
    let served = fallback.iter().filter(|r| r.is_some()).count();
    println!(
        "drill 3: broker down; {}/{} groups served directly by {}",
        served,
        scenario.groups.len(),
        CdnId(1)
    );

    // --- Drill 4: a CDN announces fraudulent scores; the reputation system
    // flags it after repeated disagreement with client measurements.
    let mut reputation = ReputationSystem::new(scenario.fleet.cdns.len());
    let fraudster = CdnId(2);
    for (g, &choice) in outcome.assignment.choice.iter().enumerate() {
        let option = &outcome.problem.options[g][choice];
        // Honest CDNs announce what clients measure; the fraudster claimed
        // scores 5x better than reality.
        let announced = if option.cdn == fraudster {
            option.score.value() / 5.0
        } else {
            option.score.value()
        };
        reputation.record(option.cdn, announced, option.score.value());
    }
    for cdn in &scenario.fleet.cdns {
        if reputation.observations(cdn.id) > 0 && reputation.is_bad(cdn.id) {
            println!(
                "drill 4: {} flagged as bad (trust {:.2}) — its bids get deprioritised",
                cdn.id,
                reputation.trust(cdn.id)
            );
        }
    }

    // Sanity: the undisturbed economics still hold.
    let settled = settle(&outcome, &scenario.world, &scenario.fleet);
    println!(
        "\nsteady state: {} CDNs served traffic, {} lost money (VDX round)",
        settled
            .per_cdn
            .iter()
            .filter(|c| c.ledger.traffic_kbps > vdx::core::units::Kbps::ZERO)
            .count(),
        settled.losing_cdns()
    );
}
