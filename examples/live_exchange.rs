//! The VDX marketplace as a live protocol: a broker and a fleet of CDN
//! agents exchanging Share / Announce / Accept messages over lossy links,
//! for several rounds, with CDN agents learning bid margins from Accept
//! feedback.
//!
//! ```text
//! cargo run --example live_exchange --release -- [rounds] [drop%] [corrupt%]
//! e.g. cargo run --example live_exchange --release -- 5 15 15
//! ```
//!
//! The fault numbers mirror the smoltcp examples' `--drop-chance` /
//! `--corrupt-chance` knobs (the README suggests 15% as a good start).

use vdx::cdn::{BidPolicy, MatchingConfig};
use vdx::core::exchange::{CdnAgent, ExchangeBroker, ExchangeConfig};
use vdx::prelude::*;
use vdx::proto::endpoint::Endpoint;
use vdx::proto::reliable::{ReliableChannel, ReliableConfig};
use vdx::proto::{FaultConfig, Link, LinkEnd, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(3);
    let drop_pct: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(10.0);
    let corrupt_pct: f64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5.0);

    let scenario = Scenario::build(ScenarioConfig::small());
    let faults = FaultConfig {
        drop_chance: drop_pct / 100.0,
        corrupt_chance: corrupt_pct / 100.0,
        delay_ms: 10,
        jitter_ms: 10,
        rate_limit_bytes_per_ms: None,
    };
    println!(
        "live exchange: {} CDNs, {} client groups, links with {drop_pct}% drop / \
         {corrupt_pct}% corrupt\n",
        scenario.fleet.cdns.len(),
        scenario.groups.len()
    );

    // One lossy link per CDN; broker on end A, agent on end B. Attach a
    // pcap-style capture to the first link so we can show the wire.
    let n = scenario.fleet.cdns.len();
    let mut links: Vec<Link> = (0..n)
        .map(|i| Link::new(faults.clone(), 7_000 + i as u64))
        .collect();
    links[0].attach_wirelog(6);
    let mut agents: Vec<CdnAgent> = (0..n)
        .map(|i| {
            CdnAgent::new(
                CdnId(i as u32),
                Endpoint::new(ReliableChannel::new(LinkEnd::B, ReliableConfig::default())),
                BidPolicy::default(),
                MatchingConfig::default(),
                scenario.fleet.clusters.len(),
                scenario.background_load.clone(),
            )
        })
        .collect();
    let broker_eps: Vec<Endpoint> = (0..n)
        .map(|_| Endpoint::new(ReliableChannel::new(LinkEnd::A, ReliableConfig::default())))
        .collect();
    let mut broker = ExchangeBroker::new(broker_eps, ExchangeConfig::default());

    let score_fn = |a: CityId, b: CityId| scenario.score_of(a, b);
    let mut clock = 0u64;
    for round in 1..=rounds {
        broker.start_round(scenario.groups.clone());
        let started = clock;
        let result = loop {
            clock += 1;
            let now = SimTime(clock);
            for (i, agent) in agents.iter_mut().enumerate() {
                agent.poll(now, &mut links[i], &scenario.fleet, &score_fn);
            }
            if let Some(result) = broker.poll(now, &mut links) {
                break result;
            }
            assert!(clock - started < 600_000, "round stalled");
        };
        // Drain the Accept messages so agents learn before the next round.
        for _ in 0..2_000 {
            clock += 1;
            let now = SimTime(clock);
            for (i, agent) in agents.iter_mut().enumerate() {
                agent.poll(now, &mut links[i], &scenario.fleet, &score_fn);
            }
        }
        println!(
            "round {round}: decided {} groups in {} virtual ms, objective {:.0}",
            result.assignment.choice.len(),
            clock - started - 2_000,
            result.assignment.objective
        );
    }

    // Show what the market taught the CDNs: margins on clusters that keep
    // losing have shaded down toward cost.
    println!("\nlearned margins (min / max per CDN) after {rounds} rounds:");
    for (i, agent) in agents.iter().enumerate() {
        let margins: Vec<f64> = scenario.fleet.cdns[i]
            .clusters
            .iter()
            .map(|&c| agent.margin(c).as_f64())
            .collect();
        let min = margins.iter().copied().fold(f64::MAX, f64::min);
        let max = margins.iter().copied().fold(f64::MIN, f64::max);
        println!("  {}: {:.3} .. {:.3}", CdnId(i as u32), min, max);
    }

    // Link-level truth: the protocol really was exercised by faults.
    let stats = links[0].stats(LinkEnd::A);
    println!(
        "\nlink 0 broker->CDN stats: {} sent, {} dropped, {} corrupted, {} delivered",
        stats.sent, stats.dropped, stats.corrupted, stats.delivered
    );
    if let Some(log) = links[0].wirelog() {
        println!("\nlast packets on link 0 (wire capture):");
        print!("{}", log.render(32));
    }
}
