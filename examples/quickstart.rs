//! Quickstart: build an ecosystem, run today's world and the VDX
//! marketplace over the same clients, and compare what happens.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use vdx::core::settle;
use vdx::prelude::*;
use vdx::sim::metrics::{compute, MetricsInput};

fn main() {
    // 1. Build a complete ecosystem: synthetic world, latency/loss model,
    //    an hour-long broker trace, a multi-CDN fleet with planned
    //    capacities and flat-rate contracts, and 3x background traffic.
    let scenario = Scenario::build(ScenarioConfig::small());
    println!(
        "ecosystem: {} countries, {} cities, {} sessions, {} CDNs, {} clusters\n",
        scenario.world.countries().len(),
        scenario.world.cities().len(),
        scenario.trace.sessions().len(),
        scenario.fleet.cdns.len(),
        scenario.fleet.clusters.len(),
    );

    // 2. Run one Decision Protocol round per design.
    let policy = CpPolicy::balanced();
    for design in [
        Design::Brokered,
        Design::Multicluster(100),
        Design::Marketplace,
    ] {
        let outcome = scenario.run(design, policy);
        let m = compute(&MetricsInput {
            scenario: &scenario,
            outcome: &outcome,
        });
        let settled = settle(&outcome, &scenario.world, &scenario.fleet);
        println!(
            "{:<20} cost {:.3}  score {:.1}  distance {:>5.0} mi  congested {:>4.1}%  \
             losing CDNs {}",
            design.name(),
            m.cost,
            m.score,
            m.distance_miles,
            m.congested_pct,
            settled.losing_cdns(),
        );
    }

    // 3. The headline: under VDX every serving CDN profits.
    let vdx = scenario.run(Design::Marketplace, policy);
    let settled = settle(&vdx, &scenario.world, &scenario.fleet);
    println!("\nper-CDN profit under VDX (per second of steady-state delivery):");
    for cdn_ledger in &settled.per_cdn {
        let l = &cdn_ledger.ledger;
        if l.traffic_kbps > vdx::core::units::Kbps::ZERO {
            println!(
                "  {}: {:>10.0} kbps -> profit {:+.3}",
                cdn_ledger.cdn,
                l.traffic_kbps.as_f64(),
                l.profit().as_f64()
            );
        }
    }
}
