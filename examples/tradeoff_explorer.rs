//! Explore the cost/performance trade-off (the paper's Fig 17) for any
//! design by sweeping the CP's cost weight `wc`.
//!
//! ```text
//! cargo run --example tradeoff_explorer --release -- [design] [wc...]
//! designs: brokered multicluster2 multicluster100 dynamicpricing
//!          dynamicmulticluster bestlookup marketplace omniscient
//! e.g. cargo run --example tradeoff_explorer --release -- marketplace 1 10 30 100
//! ```

use vdx::prelude::*;
use vdx::sim::metrics::{compute, MetricsInput};

fn parse_design(name: &str) -> Option<Design> {
    Some(match name.to_ascii_lowercase().as_str() {
        "brokered" => Design::Brokered,
        "multicluster2" => Design::Multicluster(2),
        "multicluster100" => Design::Multicluster(100),
        "dynamicpricing" => Design::DynamicPricing,
        "dynamicmulticluster" => Design::DynamicMulticluster,
        "bestlookup" => Design::BestLookup,
        "marketplace" | "vdx" => Design::Marketplace,
        "omniscient" => Design::Omniscient,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let design = args
        .first()
        .and_then(|a| parse_design(a))
        .unwrap_or(Design::Marketplace);
    let mut weights: Vec<f64> = args.iter().skip(1).filter_map(|a| a.parse().ok()).collect();
    if weights.is_empty() {
        weights = vec![0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0];
    }

    let scenario = Scenario::build(ScenarioConfig::small());
    println!("design: {design}\n");
    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>10} {:>11}",
        "wc", "median cost", "score", "distance (mi)", "load %", "congested %"
    );
    for wc in weights {
        let outcome = scenario.run(design, CpPolicy { wp: 1.0, wc });
        let m = compute(&MetricsInput {
            scenario: &scenario,
            outcome: &outcome,
        });
        println!(
            "{wc:>8} {:>12.4} {:>10.2} {:>14.0} {:>10.1} {:>11.1}",
            m.cost, m.score, m.distance_miles, m.load_pct, m.congested_pct
        );
    }
    println!("\nlarger wc leans on cost: the broker trades proximity/score for cheaper clusters.");
}
