#!/usr/bin/env bash
# Verify path: style gates plus the tier-1 build-and-test of ROADMAP.md.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> vdx-lint (surface rules + call-graph dataflow + stale-allowlist gate)"
cargo run -p vdx-lint --release
# The schema-2 report must carry all four dataflow analyses, and --diff
# against the report we just wrote must find nothing new.
for rule in lock-discipline determinism-taint panic-path unit-escape; do
  grep -q "\"rule\": \"${rule}\"" target/vdx-lint-report.json \
    || { echo "verify: ${rule} analysis produced no findings entry" >&2; exit 1; }
done
cargo run -p vdx-lint --release -- --diff target/vdx-lint-report.json

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --no-default-features -p vdx-sim (serial engine)"
cargo test -q --no-default-features -p vdx-sim

echo "==> cargo test -q --features strict-invariants (conservation guards live)"
cargo test -q --features vdx-solver/strict-invariants,vdx-cdn/strict-invariants -p vdx-solver -p vdx-cdn

echo "==> audit regression gate (Table-3 fidelity vs committed baseline)"
cargo run -p vdx-sim --bin repro --release -- audit --baseline results/BENCH_experiments.json

echo "==> audit ingest/report smoke (journal -> store -> queries)"
rm -rf target/verify-audit
cargo run -p vdx-sim --bin repro --release -- table3 --small \
  --journal target/verify-audit/t3.jsonl
cargo run -p vdx-sim --bin repro --release -- audit ingest \
  --store target/verify-audit/store target/verify-audit/t3.jsonl
cargo run -p vdx-sim --bin repro --release -- audit report \
  --store target/verify-audit/store > target/verify-audit/report.txt
grep -q "objective-delta" target/verify-audit/report.txt

echo "==> warm-vs-cold parity smoke (multi-round table3, output + journals)"
rm -rf target/verify-warm
cargo run -p vdx-sim --bin repro --release -- table3 --small --rounds 4 \
  --journal target/verify-warm/warm.jsonl > target/verify-warm/warm.txt
cargo run -p vdx-sim --bin repro --release -- table3 --small --rounds 4 --solver-cold \
  --journal target/verify-warm/cold.jsonl > target/verify-warm/cold.txt
diff target/verify-warm/warm.txt target/verify-warm/cold.txt
# Journals are byte-identical too, once the wall-clock fields (the set
# Event::zero_wall_clock scrubs: started_unix_ms, wall_us, wall_ms and
# the timing_summary percentiles) are stripped.
scrub='s/"started_unix_ms":[0-9]*/"started_unix_ms":0/;
       s/"wall_us":[0-9]*/"wall_us":0/; s/"wall_ms":[0-9]*/"wall_ms":0/;
       s/"mean_us":[0-9.eE+-]*/"mean_us":0/; s/"p50_us":[0-9.eE+-]*/"p50_us":0/;
       s/"p95_us":[0-9.eE+-]*/"p95_us":0/; s/"p99_us":[0-9.eE+-]*/"p99_us":0/'
sed -e "$scrub" target/verify-warm/warm.jsonl > target/verify-warm/warm.scrubbed
sed -e "$scrub" target/verify-warm/cold.jsonl > target/verify-warm/cold.scrubbed
diff target/verify-warm/warm.scrubbed target/verify-warm/cold.scrubbed
grep -q '"ev":"solver_resolve"' target/verify-warm/warm.jsonl

echo "==> daemon smoke (vdx-exchanged + one agent, 3 rounds over loopback)"
# Time-bounded end-to-end run of the second driver (ARCHITECTURE.md):
# real TCP on a loopback port, one vdx-agent, clean shutdown, and the
# journal must parse and show the daemon-only schema-v5 events.
rm -rf target/verify-daemon && mkdir -p target/verify-daemon
port=$((20000 + RANDOM % 20000))
timeout 120 target/release/vdx-exchanged --small --addr "127.0.0.1:${port}" \
  --rounds 3 --min-agents 1 --wait-ms 30000 \
  --journal target/verify-daemon/exchanged.jsonl &
daemon=$!
# Wait for the listener before starting the agent (the probe connection
# this opens carries no Hello and is dropped at the handshake, harmlessly).
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null; then exec 3>&-; break; fi
  sleep 0.1
done
timeout 120 target/release/vdx-agent --cdn 0 --small --connect "127.0.0.1:${port}" &
agent=$!
wait "$daemon"   # non-zero daemon exit fails the verify
wait "$agent"
grep -q '"ev":"conn_accepted"'   target/verify-daemon/exchanged.jsonl
grep -q '"ev":"round_completed"' target/verify-daemon/exchanged.jsonl
cargo run -p vdx-sim --bin repro --release -- obs-report \
  target/verify-daemon/exchanged.jsonl > target/verify-daemon/report.txt
grep -q "Daemon connections & health" target/verify-daemon/report.txt

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "verify: OK"
