#!/usr/bin/env bash
# Verify path: style gates plus the tier-1 build-and-test of ROADMAP.md.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> vdx-lint (unit-typed APIs, determinism, no-panics, event schema)"
cargo run -p vdx-lint --release

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --no-default-features -p vdx-sim (serial engine)"
cargo test -q --no-default-features -p vdx-sim

echo "==> cargo test -q --features strict-invariants (conservation guards live)"
cargo test -q --features vdx-solver/strict-invariants,vdx-cdn/strict-invariants -p vdx-solver -p vdx-cdn

echo "==> audit regression gate (Table-3 fidelity vs committed baseline)"
cargo run -p vdx-sim --bin repro --release -- audit --baseline results/BENCH_experiments.json

echo "==> audit ingest/report smoke (journal -> store -> queries)"
rm -rf target/verify-audit
cargo run -p vdx-sim --bin repro --release -- table3 --small \
  --journal target/verify-audit/t3.jsonl
cargo run -p vdx-sim --bin repro --release -- audit ingest \
  --store target/verify-audit/store target/verify-audit/t3.jsonl
cargo run -p vdx-sim --bin repro --release -- audit report \
  --store target/verify-audit/store > target/verify-audit/report.txt
grep -q "objective-delta" target/verify-audit/report.txt

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "verify: OK"
