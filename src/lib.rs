//! # VDX — Video Delivery eXchange
//!
//! A full reproduction of *"Redesigning CDN-Broker Interactions for
//! Improved Content Delivery"* (Mukerjee et al., CoNEXT 2017): the design
//! space of CDN–broker decision interfaces, the VDX marketplace, and the
//! data-driven simulation that evaluates them — plus every substrate the
//! paper depends on, built from scratch.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof so applications can depend on `vdx` alone.
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`geo`] | `vdx-geo` | World model: countries, cities, great-circle geometry |
//! | [`netsim`] | `vdx-netsim` | Latency/loss models, performance scores, regression |
//! | [`trace`] | `vdx-trace` | Broker session traces, CDN mapping data, statistics |
//! | [`solver`] | `vdx-solver` | Simplex LP, branch-and-bound MILP, assignment heuristics, min-cost flow |
//! | [`cdn`] | `vdx-cdn` | CDN actor: deployments, costs, contracts, capacity, matching, bidding |
//! | [`broker`] | `vdx-broker` | Broker actor: gathering, CP policy, the Fig 9 optimizer, QoE |
//! | [`proto`] | `vdx-proto` | Wire protocol: frames, messages, lossy links, reliable channels |
//! | [`core`] | `vdx-core` | The designs, the Decision/Delivery Protocols, the marketplace, accounting |
//! | [`sim`] | `vdx-sim` | Scenario builder, metrics, one experiment per paper table/figure |
//! | [`audit`] | `vdx-audit` | Cross-run journal analytics: columnar store, queries, regression gate |
//!
//! ## Quickstart
//!
//! ```
//! use vdx::prelude::*;
//!
//! // A small but complete ecosystem: world, network, trace, 7 CDNs.
//! let scenario = Scenario::build(ScenarioConfig::small());
//!
//! // Run one Decision Protocol round for today's world and for VDX.
//! let brokered = scenario.run(Design::Brokered, CpPolicy::balanced());
//! let vdx = scenario.run(Design::Marketplace, CpPolicy::balanced());
//!
//! // Settle the books: who served, who profited.
//! let settled = settle(&vdx, &scenario.world, &scenario.fleet);
//! assert_eq!(settled.losing_cdns(), 0, "everyone profits under VDX");
//! let _ = brokered;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vdx_audit as audit;
pub use vdx_broker as broker;
pub use vdx_cdn as cdn;
pub use vdx_core as core;
pub use vdx_geo as geo;
pub use vdx_netsim as netsim;
pub use vdx_proto as proto;
pub use vdx_sim as sim;
pub use vdx_solver as solver;
pub use vdx_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use vdx_broker::{CpPolicy, OptimizeMode};
    pub use vdx_cdn::{CdnId, ClusterId, DeploymentModel, Fleet};
    pub use vdx_core::{settle, Design, RoundOutcome};
    pub use vdx_geo::{CityId, CountryId, World, WorldConfig};
    pub use vdx_netsim::{NetModel, NetModelConfig, Score};
    pub use vdx_sim::{Scenario, ScenarioConfig};
    pub use vdx_trace::{BrokerTrace, BrokerTraceConfig, CdnLabel};
}
