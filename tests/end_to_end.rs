//! End-to-end integration: the full pipeline from world synthesis to
//! settled books, across every crate boundary.

use std::sync::OnceLock;
use vdx::core::settle;
use vdx::prelude::*;
use vdx::sim::metrics::{compute, MetricsInput};

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::small()))
}

#[test]
fn every_design_places_every_client() {
    let s = scenario();
    let demand: f64 = s.groups.iter().map(|g| g.demand_kbps.as_f64()).sum();
    for design in Design::TABLE3 {
        let outcome = s.run(design, CpPolicy::balanced());
        let placed: f64 = outcome
            .assignment
            .cluster_load_kbps
            .values()
            .map(|l| l.as_f64())
            .sum();
        assert!(
            (placed - demand).abs() < 1e-6,
            "{design}: placed {placed} of {demand} kbps"
        );
        // Chosen clusters belong to the CDN that announced them.
        for (g, &choice) in outcome.assignment.choice.iter().enumerate() {
            let o = &outcome.problem.options[g][choice];
            assert_eq!(s.fleet.owner(o.cluster), o.cdn, "{design}: ownership");
        }
    }
}

#[test]
fn settlement_conserves_traffic_and_money_flows() {
    let s = scenario();
    for design in [
        Design::Brokered,
        Design::DynamicPricing,
        Design::Marketplace,
    ] {
        let outcome = s.run(design, CpPolicy::balanced());
        let settled = settle(&outcome, &s.world, &s.fleet);
        let demand: f64 = s.groups.iter().map(|g| g.demand_kbps.as_f64()).sum();
        let cdn_traffic: f64 = settled
            .per_cdn
            .iter()
            .map(|c| c.ledger.traffic_kbps.as_f64())
            .sum();
        let country_traffic: f64 = settled
            .per_country
            .values()
            .map(|l| l.traffic_kbps.as_f64())
            .sum();
        assert!((cdn_traffic - demand).abs() < 1e-6, "{design}");
        assert!((cdn_traffic - country_traffic).abs() < 1e-6, "{design}");
        // Revenue and cost also agree between the two aggregations.
        let cdn_rev: f64 = settled
            .per_cdn
            .iter()
            .map(|c| c.ledger.revenue.as_f64())
            .sum();
        let country_rev: f64 = settled
            .per_country
            .values()
            .map(|l| l.revenue.as_f64())
            .sum();
        assert!((cdn_rev - country_rev).abs() < 1e-6, "{design}");
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = Scenario::build(ScenarioConfig::small());
    let outcome_a = a.run(Design::Marketplace, CpPolicy::balanced());
    let outcome_b = scenario().run(Design::Marketplace, CpPolicy::balanced());
    assert_eq!(outcome_a.assignment.choice, outcome_b.assignment.choice);
    assert_eq!(
        outcome_a.assignment.objective,
        outcome_b.assignment.objective
    );
}

#[test]
fn metrics_reflect_design_capabilities() {
    let s = scenario();
    let mut results = Vec::new();
    for design in Design::TABLE3 {
        let outcome = s.run(design, CpPolicy::balanced());
        let m = compute(&MetricsInput {
            scenario: s,
            outcome: &outcome,
        });
        results.push((design, m));
    }
    let get = |d: Design| results.iter().find(|(x, _)| *x == d).expect("ran").1;

    // Cluster-level optimization lets multicluster designs match or beat
    // single-cluster score.
    assert!(get(Design::Multicluster(100)).score <= get(Design::Brokered).score + 1e-9);
    // Dynamic pricing + full info beats flat pricing on delivery cost.
    assert!(get(Design::Marketplace).cost < get(Design::Brokered).cost);
    // Accurate capacity info avoids congestion.
    assert_eq!(get(Design::Marketplace).congested_pct, 0.0);
    assert_eq!(get(Design::Omniscient).congested_pct, 0.0);
    // The omniscient upper bound has the lowest cost of all designs.
    for (d, m) in &results {
        assert!(
            get(Design::Omniscient).cost <= m.cost + 1e-9,
            "Omniscient undercut by {d}"
        );
    }
}

#[test]
fn decision_round_via_facade_prelude() {
    // The facade's prelude is sufficient to drive the whole system.
    let s = scenario();
    let outcome = s.run(Design::BestLookup, CpPolicy::performance_first());
    assert_eq!(outcome.assignment.choice.len(), s.groups.len());
    let settled = settle(&outcome, &s.world, &s.fleet);
    assert!(settled.total_profit().as_f64().is_finite());
}

#[test]
fn qoe_pipeline_produces_reasonable_experience() {
    // netsim path quality -> broker QoE model, driven by real assignments.
    let s = scenario();
    let outcome = s.run(Design::Marketplace, CpPolicy::balanced());
    let mut good = 0usize;
    let mut total = 0usize;
    for (g, &choice) in outcome.assignment.choice.iter().enumerate() {
        let group = &outcome.problem.groups[g];
        let option = &outcome.problem.options[g][choice];
        let cluster = &s.fleet.clusters[option.cluster.index()];
        let path = s.net.quality(&s.world, group.city, cluster.city);
        let load = outcome.assignment.cluster_load_kbps[&option.cluster]
            + s.background_load[option.cluster.index()];
        let qoe = vdx::broker::qoe::estimate_qoe(
            &path,
            vdx::core::units::Kbps::new(group.bitrate_kbps as f64),
            load.as_f64() / cluster.capacity_kbps.as_f64().max(1e-9),
        );
        total += 1;
        if qoe.buffering_ratio < 0.1 && qoe.join_time_ms < 2_000.0 {
            good += 1;
        }
    }
    assert!(
        good as f64 / total as f64 > 0.8,
        "only {good}/{total} groups get good QoE under VDX"
    );
}
