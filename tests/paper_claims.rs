//! Integration tests pinning the paper's headline *claims* — the
//! qualitative findings each section reports — against the full pipeline.

use std::sync::OnceLock;
use vdx::core::settle;
use vdx::prelude::*;
use vdx::trace::stats;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::small()))
}

/// §3.1: "video popularity follows a Zipf distribution, and the
/// distribution of client cities follows a power-law. Most clients abandon
/// almost immediately (around 78%). The distribution of bitrates is
/// bimodal."
#[test]
fn section3_trace_statistics() {
    let s = scenario();
    let trace = &s.trace;
    assert!((0.70..0.86).contains(&trace.abandon_rate()));
    let video_counts = trace.video_counts();
    assert!(stats::estimate_zipf_exponent(&video_counts).expect("zipf") > 0.4);
    let city_counts: Vec<u64> = trace.requests_per_city().iter().map(|(_, c)| *c).collect();
    assert!(
        stats::head_mass_share(&city_counts, 0.1) > 0.4,
        "power-law cities"
    );
    let rates: Vec<f64> = trace
        .sessions()
        .iter()
        .map(|x| x.bitrate_kbps as f64)
        .collect();
    assert!(stats::edge_mass_share(&rates, 8) > 0.55, "bimodal bitrates");
}

/// §3.2 / Fig 4: brokers move a large, varying share of active sessions.
#[test]
fn section3_traffic_unpredictability() {
    let series = scenario().trace.moved_sessions_series(5.0);
    let values: Vec<f64> = series.iter().map(|(_, p)| *p).collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    assert!(mean > 20.0, "brokers move a lot of traffic: mean {mean}%");
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    assert!(max - min > 15.0, "and the rate varies: {min}..{max}");
}

/// §3.3 / Table 1: alternative clusters with similar performance are
/// common — the opportunity brokers can't currently use.
#[test]
fn section3_alternatives_exist() {
    let s = scenario();
    let sites: Vec<CityId> = s.fleet.clusters_of(CdnId(0)).map(|c| c.city).collect();
    let mut with_alternative = 0u64;
    let mut total = 0u64;
    for (city, requests) in s.trace.requests_per_city() {
        let scores: Vec<Score> = sites.iter().map(|&site| s.score_of(city, site)).collect();
        if vdx::netsim::alternatives_within(&scores, vdx::netsim::SIMILARITY_MARGIN) >= 1 {
            with_alternative += requests;
        }
        total += requests;
    }
    assert!(
        with_alternative as f64 / total as f64 > 0.5,
        "alternatives exist for most clients"
    );
}

/// §7.1 / Figs 10-12: flat-rate pricing produces losers; VDX makes every
/// serving CDN profitable with exactly the markup margin.
#[test]
fn section7_cdn_economics() {
    let s = scenario();
    let brokered = settle(
        &s.run(Design::Brokered, CpPolicy::balanced()),
        &s.world,
        &s.fleet,
    );
    let vdx = settle(
        &s.run(Design::Marketplace, CpPolicy::balanced()),
        &s.world,
        &s.fleet,
    );
    assert!(brokered.losing_cdns() > 0, "flat-rate world has losers");
    assert_eq!(vdx.losing_cdns(), 0, "VDX has none");
    for c in &vdx.per_cdn {
        if let Some(ratio) = c.ledger.price_to_cost() {
            assert!((ratio - 1.2).abs() < 1e-6, "VDX ratio is the 1.2 markup");
        }
    }
}

/// §7.1 / Figs 13-15: VDX shifts serving toward cheaper countries.
#[test]
fn section7_country_economics() {
    let s = scenario();
    let brokered = settle(
        &s.run(Design::Brokered, CpPolicy::balanced()),
        &s.world,
        &s.fleet,
    );
    let vdx = settle(
        &s.run(Design::Marketplace, CpPolicy::balanced()),
        &s.world,
        &s.fleet,
    );
    let avg_serving_cost = |settled: &vdx::core::Settlement| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (&country, ledger) in &settled.per_country {
            num += s.world.country(country).cost_index * ledger.traffic_kbps.as_f64();
            den += ledger.traffic_kbps.as_f64();
        }
        num / den
    };
    assert!(
        avg_serving_cost(&vdx) < avg_serving_cost(&brokered) + 1e-9,
        "VDX serves from cheaper countries on average"
    );
    // And still profits wherever it serves.
    for (country, ledger) in &vdx.per_country {
        if ledger.cost > vdx::core::units::Usd::ZERO {
            assert!(
                ledger.profit() > vdx::core::units::Usd::ZERO,
                "VDX loses in {country}"
            );
        }
    }
}

/// §7.2 / Fig 16: city-centric CDNs always profit under flat-rate;
/// VDX removes everyone's losses.
#[test]
fn section72_city_cdns() {
    let s = scenario();
    let expanded = s.with_city_centric(30);
    let brokered = settle(
        &expanded.run(Design::Brokered, CpPolicy::balanced()),
        &expanded.world,
        &expanded.fleet,
    );
    let vdx = settle(
        &expanded.run(Design::Marketplace, CpPolicy::balanced()),
        &expanded.world,
        &expanded.fleet,
    );
    for i in s.fleet.cdns.len()..expanded.fleet.cdns.len() {
        assert!(
            brokered.per_cdn[i].ledger.profit() >= vdx::core::units::Usd::ZERO,
            "city CDN {i} lost money under Brokered"
        );
    }
    assert_eq!(vdx.losing_cdns(), 0);
}

/// §7.3 / Fig 17: VDX can cut cost substantially without giving up
/// distance relative to today's world.
#[test]
fn section73_tradeoff_dominance() {
    use vdx::sim::metrics::{compute, MetricsInput};
    let s = scenario();
    let brokered = s.run(Design::Brokered, CpPolicy::balanced());
    let mb = compute(&MetricsInput {
        scenario: s,
        outcome: &brokered,
    });
    // Find any VDX operating point at least 25% cheaper without being
    // farther than Brokered's default point.
    let mut found = false;
    for wc in [1.0, 3.0, 10.0, 17.0, 30.0, 55.0] {
        let out = s.run(Design::Marketplace, CpPolicy { wp: 1.0, wc });
        let m = compute(&MetricsInput {
            scenario: s,
            outcome: &out,
        });
        if m.cost < 0.75 * mb.cost && m.distance_miles <= mb.distance_miles * 1.15 {
            found = true;
            break;
        }
    }
    assert!(found, "VDX should offer a dominating operating point");
}
