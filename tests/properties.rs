//! Property-based tests (proptest) on the core data structures and
//! invariants, across crate boundaries.

use proptest::prelude::*;
use vdx::geo::CityId;
use vdx::geo::GeoPoint;
use vdx::netsim::Score;
use vdx::proto::frame;
use vdx::proto::{AcceptEntry, Bid, Message, Share};
use vdx::solver::{
    solve_lp, AssignmentProblem, CandidateOption, LinearProgram, MilpConfig, Relation,
};
use vdx::trace::io;
use vdx::trace::{CdnLabel, SessionId, SessionRecord};

proptest! {
    // ---- geo -----------------------------------------------------------

    #[test]
    fn haversine_is_symmetric_and_nonnegative(
        lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
        lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let d_ab = a.distance_km(b);
        let d_ba = b.distance_km(a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        // No two points on Earth are farther apart than half the
        // circumference.
        prop_assert!(d_ab <= std::f64::consts::PI * vdx::geo::coord::EARTH_RADIUS_KM + 1.0);
    }

    #[test]
    fn haversine_triangle_inequality(
        lat1 in -80.0f64..80.0, lon1 in -170.0f64..170.0,
        lat2 in -80.0f64..80.0, lon2 in -170.0f64..170.0,
        lat3 in -80.0f64..80.0, lon3 in -170.0f64..170.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-6);
    }

    // ---- proto: framing ------------------------------------------------

    #[test]
    fn frames_roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let wire = frame::encode(&payload);
        let frame = frame::decode_datagram(&wire).expect("intact frame decodes");
        prop_assert_eq!(&frame.payload[..], &payload[..]);
        // The stream decoder agrees.
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&wire);
        let streamed = dec.next_frame().expect("decodes").expect("complete");
        prop_assert_eq!(&streamed.payload[..], &payload[..]);
    }

    #[test]
    fn corrupting_any_single_byte_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip_bit in 0u8..8,
        pos_seed in any::<u64>(),
    ) {
        let wire = frame::encode(&payload).to_vec();
        let mut corrupted = wire.clone();
        let pos = (pos_seed % wire.len() as u64) as usize;
        corrupted[pos] ^= 1 << flip_bit;
        // Either an error, or (if the flip undid itself — impossible for a
        // single bit) the same payload. Never a *different* payload.
        match frame::decode_datagram(&corrupted) {
            Ok(f) => prop_assert_eq!(&f.payload[..], &payload[..]),
            Err(_) => {}
        }
    }

    #[test]
    fn stream_decoder_never_panics_on_garbage(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..16)
    ) {
        let mut dec = frame::FrameDecoder::new();
        for chunk in &chunks {
            dec.feed(chunk);
            // Drain whatever it makes of it; errors are fine, panics not.
            for _ in 0..64 {
                match dec.next_frame() {
                    Ok(Some(_)) | Err(_) => continue,
                    Ok(None) => break,
                }
            }
        }
    }

    // ---- proto: messages -----------------------------------------------

    #[test]
    fn messages_roundtrip(
        share_id in any::<u64>(),
        location in any::<u32>(),
        isp in any::<u32>(),
        kbps in 0.0f64..1e9,
        count in any::<u32>(),
        price in 0.0f64..1e3,
        accepted in any::<bool>(),
    ) {
        let share = Share {
            share_id, location, isp, content_id: 7, data_size_kbps: kbps, client_count: count,
        };
        let bid = Bid {
            cluster_id: share_id ^ 0xABCD,
            share_id,
            performance_estimate: kbps / 2.0,
            capacity_kbps: kbps * 2.0,
            price_per_mb: price,
        };
        for msg in [
            Message::Share(vec![share]),
            Message::Announce(vec![bid]),
            Message::Accept(vec![AcceptEntry { bid, accepted }]),
            Message::Query { client_id: share_id, location },
            Message::QueryResult { client_id: share_id, cluster_id: 3 },
        ] {
            let back = Message::decode(&msg.encode()).expect("roundtrips");
            prop_assert_eq!(back, msg);
        }
    }

    #[test]
    fn message_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    // ---- trace io -------------------------------------------------------

    #[test]
    fn session_csv_roundtrips(
        arrival in 0.0f64..3600.0,
        video in any::<u32>(),
        bitrate in 1u32..10_000,
        duration in 0.1f64..10_000.0,
        city in 0u32..100_000,
        asn in any::<u32>(),
        switch_time in 0.0f64..3600.0,
    ) {
        let record = SessionRecord {
            id: SessionId(1),
            arrival_s: arrival,
            video,
            bitrate_kbps: bitrate,
            duration_s: duration,
            city: CityId(city),
            asn,
            initial_cdn: CdnLabel::A,
            switches: vec![(switch_time, CdnLabel::C)],
        };
        let csv = io::sessions_to_csv(std::slice::from_ref(&record));
        let back = io::sessions_from_csv(&csv).expect("parses");
        prop_assert_eq!(back, vec![record]);
    }

    // ---- solver ---------------------------------------------------------

    #[test]
    fn lp_solutions_are_feasible_and_beat_origin(
        c0 in -3.0f64..3.0, c1 in -3.0f64..3.0,
        a00 in 0.0f64..2.0, a01 in 0.0f64..2.0,
        a10 in 0.0f64..2.0, a11 in 0.0f64..2.0,
        b0 in 0.5f64..10.0, b1 in 0.5f64..10.0,
        ub in 0.5f64..20.0,
    ) {
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, c0).set_objective(1, c1);
        lp.set_upper_bound(0, ub).set_upper_bound(1, ub);
        lp.add_constraint(vec![(0, a00), (1, a01)], Relation::Le, b0);
        lp.add_constraint(vec![(0, a10), (1, a11)], Relation::Le, b1);
        match solve_lp(&lp) {
            vdx::solver::LpOutcome::Optimal(sol) => {
                prop_assert!(lp.is_feasible(&sol.values, 1e-6));
                // The origin is feasible, so the optimum is at least 0.
                prop_assert!(sol.objective >= -1e-9);
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    #[test]
    fn gap_heuristic_feasible_input_bounded_by_exact(
        caps in proptest::collection::vec(3.0f64..20.0, 2..4),
        client_loads in proptest::collection::vec(0.5f64..3.0, 1..6),
        seed in any::<u32>(),
    ) {
        let mut problem = AssignmentProblem::new(
            caps.iter().copied().map(vdx::core::units::Kbps::new).collect(),
        );
        let nb = caps.len();
        for (i, load) in client_loads.iter().enumerate() {
            let options: Vec<CandidateOption> = (0..nb)
                .map(|b| CandidateOption {
                    bucket: b,
                    value: ((seed as usize + i * 7 + b * 13) % 17) as f64,
                    load: vdx::core::units::Kbps::new(*load),
                })
                .collect();
            problem.add_client(options);
        }
        let heur = problem.solve_heuristic();
        if problem.respects_capacities(&heur.choice, vdx::core::units::Kbps::new(1e-9)) {
            if let Some(exact) = problem.solve_exact(&MilpConfig::default()) {
                prop_assert!(heur.objective <= exact.objective + 1e-6);
            }
        }
    }

    // ---- netsim ----------------------------------------------------------

    #[test]
    fn score_ordering_consistent_with_inputs(
        rtt1 in 1.0f64..500.0, rtt2 in 1.0f64..500.0,
        loss in 0.0f64..0.2,
    ) {
        // At equal loss, higher rtt means strictly worse score.
        let s1 = Score::from_latency_loss(rtt1, loss);
        let s2 = Score::from_latency_loss(rtt2, loss);
        if rtt1 < rtt2 {
            prop_assert!(s1.value() < s2.value());
        }
        // Loss can never make a score better.
        let clean = Score::from_latency_loss(rtt1, 0.0);
        prop_assert!(s1.value() >= clean.value());
    }
}
